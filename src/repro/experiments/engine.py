"""Parallel experiment engine: deterministic fan-out of Monte Carlo sweeps.

The Fig. 4-5 evaluations and the ablations run thousands of independent
auction rounds.  Every trial in those sweeps derives all of its randomness
from the master seed plus a human-readable label path
(:func:`repro.utils.rng.spawn_rng`), so a trial's result is a pure function
of its *spec* — never of which worker ran it, or in what order.  That
property is what lets this engine fan trials out over a process pool and
still return **bit-identical** results to a serial run.

Contract for sweep functions passed to :func:`run_sweep`:

* the function must be a module-level callable (picklable by reference);
* it takes exactly one argument, the *spec* (any picklable value);
* it derives every random draw from data inside the spec via the
  label-addressed RNG scheme, and touches no mutable global state other
  than per-process memo caches (e.g. the coverage-map cache in
  :mod:`repro.geo.datasets`, which is keyed purely by build inputs).

Scheduling and robustness:

* worker count comes from the ``workers`` argument, else the
  ``REPRO_WORKERS`` environment variable, else 1 (serial);
* tasks are submitted in chunks (``chunksize`` tasks per pickle round-trip)
  and results are consumed in submission order;
* expensive per-area artifacts are memoised *per worker process* — with the
  ``fork`` start method children also inherit whatever the parent already
  built;
* any parallel-side failure (pool unavailable, worker crash, task
  exception) triggers a graceful fallback: the whole sweep reruns serially
  in the parent, which is authoritative and reproduces a deterministic
  task error exactly where a plain loop would have raised it.

Every run produces a :class:`SweepReport` (mode, wall time, per-task
timings, worker PIDs, fallback errors) delivered through the ``on_report``
callback; the CLI and the benchmark harness print it.

All timing reads the observability clock (:mod:`repro.obs.clock`), and when
a :mod:`repro.obs` registry is collecting, each sweep also records its
rollups there: a per-sweep wall timer (``engine.sweep.<name>``), a per-task
timer whose mean is "seconds per trial" (``engine.task.<name>``) and a task
counter (``engine.tasks``).  Rollups are recorded in the parent process, so
they survive parallel runs even though worker-side per-op counters do not.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs.clock import Stopwatch

__all__ = [
    "WORKERS_ENV",
    "SweepReport",
    "TaskTiming",
    "resolve_workers",
    "run_sweep",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else ``REPRO_WORKERS``, else 1.

    A count of 1 means "run serially in this process" — the engine never
    spawns a pool for it, so serial remains the zero-dependency default.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            ) from exc
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class TaskTiming:
    """Wall time and executing process of one completed task."""

    index: int
    seconds: float
    pid: int


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call did and how long it took.

    ``mode`` is ``"serial"`` (requested), ``"parallel"`` (pool ran the whole
    sweep) or ``"serial-fallback"`` (pool requested but the sweep was rerun
    serially; ``errors`` says why).  ``task_seconds`` sums per-task wall
    times, so ``task_seconds / wall_seconds`` approximates the achieved
    parallel speedup.
    """

    name: str
    n_tasks: int
    workers: int
    chunksize: int
    mode: str = "serial"
    wall_seconds: float = 0.0
    task_seconds: float = 0.0
    timings: List[TaskTiming] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def worker_pids(self) -> Tuple[int, ...]:
        return tuple(sorted({t.pid for t in self.timings}))

    def summary(self) -> str:
        """One-line human-readable digest (what the CLI prints)."""
        line = (
            f"{self.name}: {self.n_tasks} tasks, mode={self.mode}, "
            f"workers={self.workers}, chunksize={self.chunksize}, "
            f"wall {self.wall_seconds:.2f}s, cpu {self.task_seconds:.2f}s"
        )
        if len(self.worker_pids) > 1:
            line += f", {len(self.worker_pids)} worker processes"
        if self.errors:
            line += f", fell back after: {self.errors[0]}"
        return line


class _TaskFailure:
    """Worker-side marker for a task that raised (triggers serial rerun)."""

    def __init__(self, spec_index: int, formatted: str) -> None:
        self.spec_index = spec_index
        self.formatted = formatted


def _invoke(task: Tuple[Callable, int, object]):
    """Worker entry: run one spec, timing it; never let exceptions escape.

    Exceptions are folded into a :class:`_TaskFailure` so a deterministic
    task error does not brick the pool — the parent reruns serially and the
    error surfaces there with its natural traceback.
    """
    func, index, spec = task
    watch = Stopwatch()
    try:
        value = func(spec)
    except Exception:
        return _TaskFailure(index, traceback.format_exc()), watch.elapsed(), os.getpid()
    return value, watch.elapsed(), os.getpid()


def _default_chunksize(n_tasks: int, workers: int) -> int:
    # Aim for ~4 chunks per worker: big enough to amortise pickling, small
    # enough that one slow chunk cannot serialise the tail of the sweep.
    return max(1, n_tasks // (workers * 4))


def _run_serial(
    func: Callable,
    specs: Sequence,
    report: SweepReport,
    progress: Optional[Callable[[int, int], None]],
) -> List:
    results = []
    for index, spec in enumerate(specs):
        watch = Stopwatch()
        results.append(func(spec))
        elapsed = watch.elapsed()
        report.timings.append(
            TaskTiming(index=index, seconds=elapsed, pid=os.getpid())
        )
        if progress is not None:
            progress(index + 1, len(specs))
    return results


def _run_parallel(
    func: Callable,
    specs: Sequence,
    workers: int,
    chunksize: int,
    report: SweepReport,
    progress: Optional[Callable[[int, int], None]],
) -> List:
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    # fork (where available) lets workers inherit already-built geo caches;
    # results are identical under any start method.
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    tasks = [(func, index, spec) for index, spec in enumerate(specs)]
    results: List = []
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        for value, seconds, pid in pool.map(_invoke, tasks, chunksize=chunksize):
            if isinstance(value, _TaskFailure):
                raise _ParallelTaskError(value)
            index = len(results)
            results.append(value)
            report.timings.append(
                TaskTiming(index=index, seconds=seconds, pid=pid)
            )
            if progress is not None:
                progress(index + 1, len(specs))
    return results


class _ParallelTaskError(Exception):
    """A task raised inside a worker (carries the remote traceback)."""

    def __init__(self, failure: _TaskFailure) -> None:
        super().__init__(f"task {failure.spec_index} failed in worker")
        self.failure = failure


def run_sweep(
    func: Callable,
    specs: Sequence,
    *,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    name: str = "sweep",
    progress: Optional[Callable[[int, int], None]] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List:
    """Run ``func`` over every spec, preserving order; maybe in parallel.

    Returns ``[func(spec) for spec in specs]`` — exactly that list, in that
    order, regardless of worker count.  ``progress(done, total)`` is called
    after each completed task; ``on_report`` receives the final
    :class:`SweepReport`.

    Parallel execution requires ``func`` to be module-level and all specs
    and results to be picklable; violations (like any other pool failure)
    demote the sweep to the serial path rather than raising.
    """
    specs = list(specs)
    workers = resolve_workers(workers)
    effective = min(workers, len(specs)) if specs else 1
    if chunksize is None:
        chunksize = _default_chunksize(len(specs), max(effective, 1))
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    report = SweepReport(
        name=name, n_tasks=len(specs), workers=workers, chunksize=chunksize
    )
    watch = Stopwatch()
    results: Optional[List] = None
    if effective > 1:
        try:
            results = _run_parallel(
                func, specs, effective, chunksize, report, progress
            )
            report.mode = "parallel"
        except _ParallelTaskError as exc:
            report.errors.append(exc.failure.formatted.strip().splitlines()[-1])
            report.timings.clear()
            results = None
        except Exception as exc:  # pool unavailable / broken / unpicklable
            report.errors.append(f"{type(exc).__name__}: {exc}")
            report.timings.clear()
            results = None
    if results is None:
        results = _run_serial(func, specs, report, progress)
        report.mode = "serial" if not report.errors else "serial-fallback"
    report.wall_seconds = watch.elapsed()
    report.task_seconds = sum(t.seconds for t in report.timings)
    if obs.get_active() is not None and report.timings:
        obs.record_seconds(f"engine.sweep.{name}", report.wall_seconds)
        obs.record_seconds(
            f"engine.task.{name}", report.task_seconds, len(report.timings)
        )
        obs.count("engine.tasks", report.n_tasks)
        obs.count("engine.sweeps")
    if on_report is not None:
        on_report(report)
    return results
