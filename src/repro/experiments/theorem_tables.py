"""Validation tables for Theorems 1-4 (paper formula / exact / Monte-Carlo)."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.analysis.montecarlo import (
    simulate_expected_plaintext_hits,
    simulate_no_leakage,
    simulate_zero_not_winning,
)
from repro.analysis.theorems import (
    theorem1_exact,
    theorem1_paper,
    theorem2_exact,
    theorem2_paper,
    theorem3_paper,
)
from repro.utils.rng import spawn_rng

__all__ = [
    "DEFAULT_PROBS",
    "theorem1_table",
    "theorem2_table",
    "theorem3_table",
]

#: A representative decreasing substitution law over bmax = 7.
DEFAULT_PROBS = (0.35, 0.20, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02)


def theorem1_table(
    *,
    probs: Sequence[float] = DEFAULT_PROBS,
    cases: Sequence[tuple] = ((3, 5), (2, 10), (5, 4), (7, 8)),
    trials: int = 50000,
    seed: str = "lppa-repro",
) -> List[Dict[str, object]]:
    """Rows of (paper, exact, Monte-Carlo) for Theorem 1 cases (b_n, m)."""
    rows = []
    for b_n, m in cases:
        rng = random.Random(spawn_rng(seed, "thm1", f"{b_n}-{m}").random())
        rows.append(
            {
                "b_n": b_n,
                "m": m,
                "paper": round(theorem1_paper(b_n, m, probs), 5),
                "exact": round(theorem1_exact(b_n, m, probs), 5),
                "monte_carlo": round(
                    simulate_zero_not_winning(b_n, m, probs, rng, trials=trials), 5
                ),
            }
        )
    return rows


def theorem2_table(
    *,
    probs: Sequence[float] = DEFAULT_PROBS,
    cases: Sequence[tuple] = ((3, 6, 2), (2, 8, 3), (4, 10, 4), (5, 12, 5)),
    trials: int = 50000,
    seed: str = "lppa-repro",
) -> List[Dict[str, object]]:
    """Rows for Theorem 2 cases (b_n, m, t); 'exact' is our derivation."""
    rows = []
    for b_n, m, t in cases:
        rng = random.Random(spawn_rng(seed, "thm2", f"{b_n}-{m}-{t}").random())
        rows.append(
            {
                "b_n": b_n,
                "m": m,
                "t": t,
                "paper": round(theorem2_paper(b_n, m, t, probs), 5),
                "exact": round(theorem2_exact(b_n, m, t, probs), 5),
                "monte_carlo": round(
                    simulate_no_leakage(b_n, m, t, probs, rng, trials=trials), 5
                ),
            }
        )
    return rows


def theorem3_table(
    *,
    bids: Sequence[int] = (2, 5, 7, 9),
    bmax: int = 15,
    cases: Sequence[tuple] = ((6, 2), (8, 3), (10, 2)),
    trials: int = 50000,
    seed: str = "lppa-repro",
) -> List[Dict[str, object]]:
    """Rows for Theorem 3 cases (m, t) under the uniform disguise law."""
    rows = []
    for m, t in cases:
        rng = random.Random(spawn_rng(seed, "thm3", f"{m}-{t}").random())
        rows.append(
            {
                "m": m,
                "t": t,
                "paper": round(theorem3_paper(list(bids), m, t, bmax), 5),
                "monte_carlo": round(
                    simulate_expected_plaintext_hits(
                        list(bids), m, t, bmax, rng, trials=trials
                    ),
                    5,
                ),
            }
        )
    return rows
