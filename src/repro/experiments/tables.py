"""Plain-text table formatting for experiment output.

Every experiment function returns a list of flat dicts (one per row);
:func:`format_table` renders them with aligned columns so the benchmark
harness can print the same series the paper plots.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["format_table"]


def format_table(rows: Sequence[Dict[str, object]], *, title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Column order follows the first row's key order; missing cells render
    empty.  Floats are shown as given (callers round for presentation).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
