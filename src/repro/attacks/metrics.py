"""Location-privacy metrics (section VI.A, after Shokri et al. [13]).

The attacker's output is a set ``P`` of candidate cells with a posterior
``Pr_x`` (uniform over ``P`` for BCM/BPM — neither attack produces a
non-uniform posterior).  The paper scores an attack with four quantities:

* **uncertainty** ``-Σ Pr_x log2 Pr_x`` — entropy of the posterior;
* **incorrectness** ``Σ Pr_x ||l_x - l_0||`` — expected distance from the
  candidate cells to the true location;
* **failure rate** — the true cell is not in ``P`` at all;
* **number of possible cells** ``|P|``.

Larger values of all four mean *better privacy* for the user.  Distances are
measured in cell units (multiply by ``grid.cell_km`` for kilometres).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geo.grid import Cell, GridSpec

__all__ = ["AttackScore", "score_attack", "aggregate_scores", "AggregateScore"]


@dataclass(frozen=True)
class AttackScore:
    """Privacy metrics of one attack run against one user."""

    n_cells: int
    uncertainty_bits: float
    incorrectness_cells: float
    failed: bool

    def __post_init__(self) -> None:
        if self.n_cells < 0:
            raise ValueError("n_cells must be non-negative")


def score_attack(
    possible: np.ndarray, true_cell: Cell, grid: GridSpec
) -> AttackScore:
    """Score a boolean candidate mask against the user's true cell.

    An empty mask is a total failure: zero cells, zero uncertainty, and
    incorrectness reported as NaN (no posterior to take an expectation over).
    """
    if possible.shape != (grid.rows, grid.cols):
        raise ValueError("possible-mask shape does not match the grid")
    grid.require(true_cell)
    count = int(possible.sum())
    if count == 0:
        return AttackScore(
            n_cells=0,
            uncertainty_bits=0.0,
            incorrectness_cells=float("nan"),
            failed=True,
        )
    rows, cols = np.nonzero(possible)
    distances = np.hypot(rows - true_cell[0], cols - true_cell[1])
    return AttackScore(
        n_cells=count,
        uncertainty_bits=math.log2(count),
        incorrectness_cells=float(distances.mean()),
        failed=not bool(possible[true_cell]),
    )


@dataclass(frozen=True)
class AggregateScore:
    """Averages over a population of attacked users."""

    n_users: int
    mean_cells: float
    mean_uncertainty_bits: float
    mean_incorrectness_cells: float
    failure_rate: float

    def as_row(self) -> dict:
        """Flat dict for table/CSV emission by the benchmark harness."""
        return {
            "users": self.n_users,
            "cells": round(self.mean_cells, 2),
            "uncertainty_bits": round(self.mean_uncertainty_bits, 3),
            "incorrectness_cells": round(self.mean_incorrectness_cells, 2),
            "failure_rate": round(self.failure_rate, 4),
        }


def aggregate_scores(scores: Sequence[AttackScore]) -> AggregateScore:
    """Population averages; incorrectness averages over defined values only."""
    if not scores:
        raise ValueError("cannot aggregate zero scores")
    incorrect = [
        s.incorrectness_cells for s in scores if not math.isnan(s.incorrectness_cells)
    ]
    return AggregateScore(
        n_users=len(scores),
        mean_cells=sum(s.n_cells for s in scores) / len(scores),
        mean_uncertainty_bits=sum(s.uncertainty_bits for s in scores) / len(scores),
        mean_incorrectness_cells=(
            sum(incorrect) / len(incorrect) if incorrect else float("nan")
        ),
        failure_rate=sum(1 for s in scores if s.failed) / len(scores),
    )
