"""Multi-round linkage attack and the ID-mixing countermeasure (§V.C.3).

"If a user participates the auction several times without ID changed, the
auctioneer could collect much information about this SU even with our
protocol."  This module implements exactly that adversary: it links a
bidder's submissions across rounds (possible when wire identities are
stable), infers a channel set from each round's masked-bid rankings, and
intersects the resulting BCM candidate regions — every round adds
constraints, so the candidate set can only shrink.

The countermeasure is :class:`repro.lppa.idpool.IdPool`: with a fresh
pseudonym pool per round, the adversary cannot link submissions and is
reduced to its single-round knowledge.  The ablation benchmark
``benchmarks/test_ablation_id_mixing.py`` quantifies the difference.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.attacks.against_lppa import Ranking, infer_available_sets
from repro.attacks.bcm import bcm_attack_channels
from repro.geo.database import GeoLocationDatabase

__all__ = ["multiround_linkage_attack"]


def multiround_linkage_attack(
    database: GeoLocationDatabase,
    rounds_rankings: Sequence[Sequence[Ranking]],
    n_users: int,
    fraction: float,
    *,
    robust: bool = True,
) -> List[np.ndarray]:
    """Candidate masks after linking a user's submissions over all rounds.

    ``rounds_rankings[r]`` is round ``r``'s per-channel ranking list (the
    same attacker view a single-round attack consumes).  For each user the
    per-round inferred channel sets are unioned — a channel the user ranked
    highly in *any* round is treated as available — before one (robust)
    BCM intersection.  The union is the right combinator because a genuine
    availability inference from any round remains true in every round
    (users do not move within a leasing campaign).
    """
    if not rounds_rankings:
        raise ValueError("need at least one round")
    for rankings in rounds_rankings:
        if len(rankings) != database.n_channels:
            raise ValueError("every round needs one ranking per channel")

    accumulated = {user: set() for user in range(n_users)}
    for rankings in rounds_rankings:
        inferred = infer_available_sets(rankings, n_users, fraction)
        for user, channels in inferred.items():
            accumulated[user] |= channels

    return [
        bcm_attack_channels(
            database, sorted(accumulated[user]), skip_emptying=robust
        )
        for user in range(n_users)
    ]
