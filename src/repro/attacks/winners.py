"""The winner-list attack (second threat of §V.C.3).

Auction outcomes are public — winners must learn (and use!) their channels,
and the paper's charging phase explicitly *publishes* the charges.  A
winner's channel is one the winner genuinely values, so every observed win
is a high-confidence availability bit: "what's worse, if one user wins the
auction a few times, the attacker may utilize the winning spectrum to
launch the BCM attack with a high accuracy".

Unlike the masked-ranking inference, wins are (almost) never forged for a
*valid* winner — the TTP filtered the disguised zeros — so the intersection
stays truthful no matter the disguise policy; only pseudonym mixing
defends, by preventing the attacker from accumulating wins across rounds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.attacks.bcm import bcm_attack_channels
from repro.auction.outcome import AuctionOutcome
from repro.geo.database import GeoLocationDatabase

__all__ = ["winner_channel_sets", "winner_list_attack"]


def winner_channel_sets(
    outcomes: Sequence[AuctionOutcome], n_users: int
) -> Dict[int, Set[int]]:
    """Per-user channels observed won (valid wins only) across rounds.

    Invalid wins are excluded: the attacker sees the TTP's public
    invalid-winner notifications (or simply that no charge was published),
    and an invalid win carries no availability information anyway.
    """
    won: Dict[int, Set[int]] = {user: set() for user in range(n_users)}
    for outcome in outcomes:
        for win in outcome.valid_wins:
            if not 0 <= win.bidder < n_users:
                raise ValueError(f"outcome references unknown bidder {win.bidder}")
            won[win.bidder].add(win.channel)
    return won


def winner_list_attack(
    database: GeoLocationDatabase,
    outcomes: Sequence[AuctionOutcome],
    n_users: int,
) -> List[np.ndarray]:
    """BCM from observed wins: one candidate mask per user.

    A user never observed winning yields the whole area.  No skip-emptying
    robustness is needed — valid wins are genuine availability, so the
    user's true cell always survives the intersection.
    """
    if not outcomes:
        raise ValueError("need at least one observed outcome")
    won = winner_channel_sets(outcomes, n_users)
    return [
        bcm_attack_channels(database, sorted(won[user]))
        for user in range(n_users)
    ]
