"""Bid Channels Mining attack — Algorithm 1.

An SU only bids on channels that are available at its location for the whole
lease term, so every positive bid places the user inside ``C_r``, the
complement of that channel's PU coverage.  Starting from the whole area
``A``, the attacker intersects the ``C_r`` of every positively-bid channel:

    P = A ∩ C_r1 ∩ C_r2 ∩ ...

With many bid channels the intersection shrinks from 10 000 cells to a few
hundred — the paper's headline leak.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.auction.bidders import SecondaryUser
from repro.geo.database import GeoLocationDatabase

__all__ = ["bcm_attack", "bcm_attack_channels"]


def bcm_attack_channels(
    database: GeoLocationDatabase,
    channels: Iterable[int],
    *,
    skip_emptying: bool = False,
) -> np.ndarray:
    """Algorithm 1 on an explicit set of (inferred) available channels.

    Returns the boolean candidate mask ``P``.  An empty channel set yields
    the whole area (the attacker learned nothing).

    ``skip_emptying`` enables the *robust* variant used against LPPA: a
    constraint that would empty the intersection is discarded instead of
    applied.  Against honest plaintext bids the two variants coincide (the
    user's true cell satisfies every genuine constraint, so the
    intersection can never go empty); against LPPA's forged availability
    the plain intersection almost always collapses to the empty set, while
    the robust attacker keeps a (possibly wrong) non-empty candidate
    region.  Channels are applied in ascending index order, so the variant
    is deterministic.
    """
    grid = database.coverage.grid
    mask = np.ones((grid.rows, grid.cols), dtype=bool)
    tensor = database.availability_tensor()
    for ch in sorted(set(channels)):
        if not 0 <= ch < database.n_channels:
            raise IndexError(f"channel {ch} outside 0..{database.n_channels - 1}")
        refined = mask & tensor[ch]
        if skip_emptying and not refined.any():
            continue
        mask = refined
    return mask


def bcm_attack(
    database: GeoLocationDatabase, user: SecondaryUser
) -> np.ndarray:
    """Algorithm 1 on a plaintext bid vector: use every channel bid > 0."""
    if user.n_channels != database.n_channels:
        raise ValueError(
            "user's bid vector length does not match the database channel count"
        )
    return bcm_attack_channels(database, sorted(user.available_set()))
