"""The attacker facing LPPA (section VI.C's adversary model).

Under the advanced scheme the auctioneer no longer sees bid values or
availability bits — but it *can* still order the masked bids within each
channel (per-channel keys only kill cross-channel comparison).  The paper
therefore evaluates LPPA against an adversary that:

1. takes each channel's masked-bid ranking,
2. keeps the top ``t`` bidders (a percentage — 25/50/66/80 % — of the
   column), betting that high masked bids mean the channel is genuinely
   available to those users,
3. feeds each user's inferred channel set to BCM (Algorithm 1).

BPM is impossible here: the attacker has orders, not values.  The zero
disguises poison step 2 — a forged high bid pulls in a channel whose
coverage complement the user may not occupy at all, which can empty the BCM
intersection entirely (an attack failure).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.attacks.bcm import bcm_attack_channels
from repro.geo.database import GeoLocationDatabase

__all__ = ["top_fraction_bidders", "infer_available_sets", "lppa_bcm_attack"]

Ranking = List[List[int]]  # equivalence classes, best first


def top_fraction_bidders(ranking: Ranking, fraction: float) -> Set[int]:
    """The top ``ceil(fraction * N)`` bidders of one channel's ranking.

    Equivalence classes are consumed whole while they fit; a class
    straddling the cut-off is truncated deterministically (ties carry no
    order information, so which members are kept is arbitrary anyway).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    n_users = sum(len(cls) for cls in ranking)
    t = math.ceil(fraction * n_users)
    chosen: Set[int] = set()
    for tie_class in ranking:
        if len(chosen) >= t:
            break
        room = t - len(chosen)
        chosen.update(tie_class[:room])
    return chosen


def infer_available_sets(
    rankings: Sequence[Ranking], n_users: int, fraction: float
) -> Dict[int, Set[int]]:
    """Per-user inferred channel sets from all channels' top fractions."""
    inferred: Dict[int, Set[int]] = {user: set() for user in range(n_users)}
    for channel, ranking in enumerate(rankings):
        for user in top_fraction_bidders(ranking, fraction):
            if not 0 <= user < n_users:
                raise ValueError(f"ranking references unknown user {user}")
            inferred[user].add(channel)
    return inferred


def lppa_bcm_attack(
    database: GeoLocationDatabase,
    rankings: Sequence[Ranking],
    n_users: int,
    fraction: float,
    *,
    robust: bool = True,
) -> List[np.ndarray]:
    """Run the full pipeline and return one BCM candidate mask per user.

    A user absent from every channel's top fraction yields the whole area
    (the attacker learned nothing about it).

    ``robust`` selects the skip-emptying intersection (the practical
    attacker): the forged availability planted by the zero disguises makes
    the plain Algorithm-1 intersection collapse to the empty set for almost
    every user, so a real adversary discards constraints that would zero
    out its candidate region.  ``robust=False`` gives the verbatim
    Algorithm 1, whose near-total failure against LPPA is itself one of the
    paper's claims (the 99.5 % failure quoted for the 100 % selection).
    """
    if len(rankings) != database.n_channels:
        raise ValueError("one ranking per database channel required")
    inferred = infer_available_sets(rankings, n_users, fraction)
    return [
        bcm_attack_channels(
            database, sorted(inferred[user]), skip_emptying=robust
        )
        for user in range(n_users)
    ]
