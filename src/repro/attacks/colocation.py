"""The conflict-graph side channel: localisation through known anchors.

LPPA must reveal the pairwise conflict bits — the auction cannot allocate
without them — and each bit is a *proximity oracle*: ``conflict(i, j)``
means ``|x_i - x_j| < 2λ`` and ``|y_i - y_j| < 2λ``.  An adversary who
knows the true locations of a few *anchor* users (its own sybils, or
users it identified elsewhere) can therefore box every other bidder:

* a conflict with anchor ``a`` confines the victim to the open
  ``(2λ-1)``-box around ``a``;
* a non-conflict *excludes* that box.

This attack is orthogonal to BCM/BPM (it uses no bids at all), is immune
to the zero disguises, and its accuracy is bounded only by the anchor
density — which is why the security notes class the conflict graph as a
deliberate, quantified leak rather than a flaw.  ID mixing does not help
within a round (the graph is per-round anyway); what limits it in practice
is that anchors must be *physically deployed* radios.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.auction.conflict import ConflictGraph
from repro.geo.grid import Cell, GridSpec

__all__ = ["colocation_attack", "anchor_boxes"]


def anchor_boxes(
    grid: GridSpec, anchor_cell: Cell, two_lambda: int
) -> np.ndarray:
    """Boolean mask of cells conflicting with a user at ``anchor_cell``."""
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    grid.require(anchor_cell)
    mask = np.zeros((grid.rows, grid.cols), dtype=bool)
    d = two_lambda - 1
    row_lo = max(0, anchor_cell[0] - d)
    row_hi = min(grid.rows, anchor_cell[0] + d + 1)
    col_lo = max(0, anchor_cell[1] - d)
    col_hi = min(grid.cols, anchor_cell[1] + d + 1)
    mask[row_lo:row_hi, col_lo:col_hi] = True
    return mask


def colocation_attack(
    grid: GridSpec,
    conflict: ConflictGraph,
    anchors: Dict[int, Cell],
    two_lambda: int,
) -> List[np.ndarray]:
    """Candidate masks for every user, from anchor conflict bits alone.

    ``anchors`` maps user indices to their known true cells.  For each
    non-anchor user the returned mask is the intersection of the conflict
    boxes of conflicting anchors and the complements of non-conflicting
    anchors' boxes; anchors themselves get their singleton cell.  Users
    are never excluded by their own row (the attacker knows who it is
    localising).
    """
    for anchor, cell in anchors.items():
        if not 0 <= anchor < conflict.n_users:
            raise ValueError(f"anchor {anchor} outside the population")
        grid.require(cell)

    boxes = {
        anchor: anchor_boxes(grid, cell, two_lambda)
        for anchor, cell in anchors.items()
    }
    masks: List[np.ndarray] = []
    for user in range(conflict.n_users):
        if user in anchors:
            mask = np.zeros((grid.rows, grid.cols), dtype=bool)
            mask[anchors[user]] = True
            masks.append(mask)
            continue
        mask = np.ones((grid.rows, grid.cols), dtype=bool)
        for anchor, box in boxes.items():
            if conflict.are_conflicting(user, anchor):
                mask &= box
            else:
                mask &= ~box
        masks.append(mask)
    return masks
