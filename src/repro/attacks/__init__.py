"""Location-privacy attacks and metrics.

* BCM — Bid Channels Mining (Algorithm 1): intersect coverage complements
  of positively-bid channels.
* BPM — Bid Price Mining (Algorithm 2): match the normalised bid profile
  against the per-cell quality database.
* The anti-LPPA adversary: top-fraction selection on masked bid rankings,
  then BCM.
* Metrics (after Shokri et al.): uncertainty, incorrectness, failure rate,
  candidate-set size.
"""

from repro.attacks.against_lppa import (
    infer_available_sets,
    lppa_bcm_attack,
    top_fraction_bidders,
)
from repro.attacks.bayes import bpm_posterior, score_posterior
from repro.attacks.bcm import bcm_attack, bcm_attack_channels
from repro.attacks.colocation import anchor_boxes, colocation_attack
from repro.attacks.bpm import bpm_attack, bpm_distance_field
from repro.attacks.multiround import multiround_linkage_attack
from repro.attacks.winners import winner_channel_sets, winner_list_attack
from repro.attacks.metrics import (
    AggregateScore,
    AttackScore,
    aggregate_scores,
    score_attack,
)

__all__ = [
    "infer_available_sets",
    "lppa_bcm_attack",
    "top_fraction_bidders",
    "bpm_posterior",
    "score_posterior",
    "bcm_attack",
    "bcm_attack_channels",
    "anchor_boxes",
    "colocation_attack",
    "bpm_attack",
    "bpm_distance_field",
    "multiround_linkage_attack",
    "winner_channel_sets",
    "winner_list_attack",
    "AggregateScore",
    "AttackScore",
    "aggregate_scores",
    "score_attack",
]
