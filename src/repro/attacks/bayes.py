"""Soft (Bayesian) variant of the BPM attack.

Algorithm 2 thresholds: it keeps the lowest-dq cells and treats them as a
uniform candidate set.  The Shokri framework the paper's metrics come from
actually scores *posterior distributions*, and the dq field supports a
natural one: modelling the per-channel quality mismatch as Gaussian noise
with scale ``sigma`` gives

    Pr(cell) ∝ exp(-dq(cell) / (2 * sigma^2))   over the BCM candidate set.

This module computes that posterior and scores it with the same four
metrics generalised to non-uniform weights.  The hard Algorithm 2 is the
``sigma -> 0`` limit (all mass on the arg-min cell); very large ``sigma``
recovers plain BCM (uniform over the candidate set) — both limits are
pinned by tests, making the soft attack a strict generalisation.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.attacks.bpm import bpm_distance_field
from repro.attacks.metrics import AttackScore
from repro.geo.database import GeoLocationDatabase
from repro.geo.grid import Cell, GridSpec

__all__ = ["bpm_posterior", "score_posterior"]


def bpm_posterior(
    database: GeoLocationDatabase,
    user_bids: Tuple[int, ...],
    possible: np.ndarray,
    *,
    sigma: float = 0.2,
) -> np.ndarray:
    """Posterior probability grid over the BCM candidate set.

    ``sigma`` is the assumed noise scale of the normalised quality
    mismatch; the paper's ``|eta| <= 20%`` bid noise corresponds to
    sigma ~ 0.1-0.3 on the dq scale.  Returns an all-zero grid when the
    candidate set is empty.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    grid = database.coverage.grid
    if possible.shape != (grid.rows, grid.cols):
        raise ValueError("possible-mask shape does not match the grid")
    if not possible.any():
        return np.zeros((grid.rows, grid.cols))

    dq = bpm_distance_field(database, user_bids, possible)
    finite = np.isfinite(dq)
    if not finite.any():
        return np.zeros((grid.rows, grid.cols))
    log_weights = np.where(finite, -dq / (2.0 * sigma * sigma), -np.inf)
    log_weights -= log_weights[finite].max()  # stabilise the exponentials
    weights = np.where(finite, np.exp(log_weights), 0.0)
    return weights / weights.sum()


def score_posterior(
    posterior: np.ndarray, true_cell: Cell, grid: GridSpec
) -> AttackScore:
    """The paper's four metrics over a (possibly non-uniform) posterior.

    * uncertainty  = -sum p log2 p (Shannon entropy);
    * incorrectness = sum p * distance(cell, true);
    * n_cells       = support size;
    * failed        = true cell outside the support.
    """
    if posterior.shape != (grid.rows, grid.cols):
        raise ValueError("posterior shape does not match the grid")
    grid.require(true_cell)
    total = float(posterior.sum())
    if total == 0.0:
        return AttackScore(
            n_cells=0,
            uncertainty_bits=0.0,
            incorrectness_cells=float("nan"),
            failed=True,
        )
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise ValueError("posterior must sum to 1 (or be all-zero)")

    support = posterior > 0.0
    probs = posterior[support]
    entropy = float(-(probs * np.log2(probs)).sum())
    rows, cols = np.nonzero(support)
    distances = np.hypot(rows - true_cell[0], cols - true_cell[1])
    incorrectness = float((posterior[support] * distances).sum())
    return AttackScore(
        n_cells=int(support.sum()),
        uncertainty_bits=entropy,
        incorrectness_cells=incorrectness,
        failed=not bool(support[true_cell]),
    )
