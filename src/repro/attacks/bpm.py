"""Bid Price Mining attack — Algorithm 2 (with the paper's practical variants).

Truthful bids are proportional to per-cell channel quality, so the *shape*
of a user's bid vector fingerprints its cell.  The attacker:

1. normalises the user's bids by the largest one — the estimated quality
   profile ``q_r^i = b_r^i / b_max^i`` with ``q_{r_max}^i = 1``;
2. for every candidate cell ``(m, n)`` from BCM, compares that profile to
   the database's real qualities, normalised the same way:

       dq(m, n) = Σ_{r in AS(i)} ( q_r^i - q*_r(m, n) / q*_{r_max}(m, n) )²

3. keeps the lowest-dq cell(s).

Because sensing noise perturbs the bids, the paper keeps not one but a
*fraction* of the BCM cells with the smallest dq (1/2, 1/3, ...), and caps
the output size with a hard threshold to keep the candidate set useful.
Both knobs are reproduced here.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.auction.bidders import SecondaryUser
from repro.geo.database import GeoLocationDatabase

__all__ = ["bpm_distance_field", "bpm_attack"]

#: Quality below this is treated as "channel effectively unusable here";
#: a candidate cell whose reference channel has no quality cannot explain
#: a maximal bid on it and receives an infinite distance.
_EPS_QUALITY = 1e-9


def bpm_distance_field(
    database: GeoLocationDatabase,
    user_bids: Tuple[int, ...],
    possible: np.ndarray,
) -> np.ndarray:
    """The dq value for every candidate cell (inf outside ``possible``).

    Implements lines 4-15 of Algorithm 2 vectorised over the grid.  Raises
    if the user has no positive bid (the attack needs a reference channel).
    """
    grid = database.coverage.grid
    if possible.shape != (grid.rows, grid.cols):
        raise ValueError("possible-mask shape does not match the grid")
    available = [ch for ch, b in enumerate(user_bids) if b > 0]
    if not available:
        raise ValueError("BPM needs at least one positive bid")

    b_max = max(user_bids)
    r_max = user_bids.index(b_max)
    quality = database.quality_tensor()  # (k, rows, cols)

    ref = quality[r_max]
    dq = np.zeros((grid.rows, grid.cols))
    valid_ref = ref > _EPS_QUALITY
    for ch in available:
        est = user_bids[ch] / b_max  # q_r^i, with q_{r_max}^i == 1
        with np.errstate(divide="ignore", invalid="ignore"):
            real = np.where(valid_ref, quality[ch] / np.maximum(ref, _EPS_QUALITY), 0.0)
        dq += (est - real) ** 2
    dq = np.where(valid_ref, dq, np.inf)
    return np.where(possible, dq, np.inf)


def bpm_attack(
    database: GeoLocationDatabase,
    user: SecondaryUser,
    possible: np.ndarray,
    *,
    keep_fraction: float = 0.0,
    max_cells: Optional[int] = None,
) -> np.ndarray:
    """Algorithm 2: shrink the BCM candidate mask using bid prices.

    Parameters
    ----------
    database, user, possible:
        The quality oracle, the attacked user, and the BCM output ``P``.
    keep_fraction:
        Fraction of the candidate cells (smallest dq first) to keep; 0 (the
        printed Algorithm 2) keeps only the minimal-dq cell(s).
    max_cells:
        The paper's hard cap: never return more than this many cells even
        when ``keep_fraction`` of the candidates would exceed it.

    Returns
    -------
    numpy.ndarray
        Boolean mask of the selected cells (empty if ``possible`` is empty).
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must lie in [0, 1]")
    if max_cells is not None and max_cells < 1:
        raise ValueError("max_cells must be >= 1 when given")

    grid = database.coverage.grid
    result = np.zeros((grid.rows, grid.cols), dtype=bool)
    n_candidates = int(possible.sum())
    if n_candidates == 0:
        return result

    dq = bpm_distance_field(database, user.bids, possible)
    flat = dq.ravel()
    finite = np.isfinite(flat)
    n_finite = int(finite.sum())
    if n_finite == 0:
        return result

    if keep_fraction == 0.0:
        keep = 1
    else:
        keep = max(1, math.ceil(keep_fraction * n_candidates))
    if max_cells is not None:
        keep = min(keep, max_cells)
    keep = min(keep, n_finite)

    order = np.argsort(flat, kind="stable")[:keep]
    result.ravel()[order] = True
    # argsort may have pulled in inf cells if keep > n_finite; guarded above,
    # but assert the invariant cheaply.
    assert np.isfinite(flat[order]).all()
    return result
