"""Binary prefixes and prefix families (paper section II.B).

A *prefix* ``t1 t2 ... ts * ... *`` of width ``w`` fixes its first ``s`` bits
and wildcards the remaining ``w - s``; as a set it is the contiguous range of
all ``w``-bit values sharing those leading bits.

The *prefix family* ``G(x)`` of a ``w``-bit number ``x`` is the chain of
``w + 1`` prefixes obtained by wildcarding 0, 1, ..., w trailing bits — every
prefix that contains ``x``.  Prefix membership verification rests on the fact
that ``x`` lies in a range ``[a, b]`` iff ``G(x)`` intersects the prefix
cover of ``[a, b]`` (see :mod:`repro.prefix.ranges`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Tuple

__all__ = ["Prefix", "prefix_family", "bit_width_for"]


@dataclass(frozen=True, order=True)
class Prefix:
    """An ``s``-prefix of ``w``-bit numbers: ``s`` fixed bits then wildcards.

    Attributes
    ----------
    value:
        The fixed leading bits, as an integer in ``[0, 2**length)``.
    length:
        Number of fixed bits ``s`` (0 gives the all-wildcard prefix).
    width:
        Total bit width ``w`` of the numbers this prefix ranges over.
    """

    value: int
    length: int
    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("prefix width must be >= 1")
        if not 0 <= self.length <= self.width:
            raise ValueError(
                f"prefix length {self.length} outside 0..{self.width}"
            )
        if not 0 <= self.value < (1 << self.length):
            raise ValueError(
                f"prefix value {self.value} does not fit in {self.length} bits"
            )

    @property
    def low(self) -> int:
        """Smallest w-bit number matching this prefix."""
        return self.value << (self.width - self.length)

    @property
    def high(self) -> int:
        """Largest w-bit number matching this prefix."""
        return self.low + (1 << (self.width - self.length)) - 1

    def contains(self, x: int) -> bool:
        """True when the w-bit number ``x`` matches the fixed bits."""
        if not 0 <= x < (1 << self.width):
            raise ValueError(f"{x} is not a {self.width}-bit number")
        return (x >> (self.width - self.length)) == self.value

    def children(self) -> Iterator["Prefix"]:
        """The two (s+1)-prefixes refining this one (trie children)."""
        if self.length == self.width:
            return iter(())
        return iter(
            (
                Prefix(self.value << 1, self.length + 1, self.width),
                Prefix((self.value << 1) | 1, self.length + 1, self.width),
            )
        )

    def __str__(self) -> str:
        fixed = format(self.value, f"0{self.length}b") if self.length else ""
        return fixed + "*" * (self.width - self.length)


def bit_width_for(max_value: int) -> int:
    """Smallest bit width that can represent every value in [0, max_value]."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return max(1, max_value.bit_length())


@lru_cache(maxsize=65536)
def _prefix_family_cached(x: int, width: int) -> Tuple[Prefix, ...]:
    return tuple(Prefix(x >> i, width - i, width) for i in range(width + 1))


def prefix_family(x: int, width: int) -> List[Prefix]:
    """The prefix family ``G(x)``: all ``width + 1`` prefixes containing x.

    Ordered from the full ``width``-bit value down to the all-wildcard
    prefix, matching the paper's presentation (the i-th element wildcards
    ``i`` trailing bits).  Memoized: the family is a pure function of
    ``(x, width)`` and hot paths (stationary SUs, repeated bid values)
    recompute it constantly.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not 0 <= x < (1 << width):
        raise ValueError(f"{x} is not a {width}-bit number")
    return list(_prefix_family_cached(x, width))
