"""HMAC-masked prefix sets and membership verification (sections II.B, IV).

The protocol's only on-the-wire objects are *masked sets*: the HMAC digests
of numericalized prefixes.  Whoever holds two masked sets can test whether
they share an element — and therefore whether a hidden value lies in a hidden
range — but learns nothing else about either.

This module provides:

* :class:`MaskedSet` — an immutable set of digests with intersection tests;
* :class:`MaskSpec` / :func:`mask_specs` — the batch API: describe many
  prefix sets and mask them all in one backend call;
* :func:`mask_value` — mask the prefix family ``G(x)`` of a value;
* :func:`mask_range` — mask the cover ``Q([a, b])`` of a range, optionally
  padded with random filler digests to a fixed cardinality (the advanced
  scheme pads to ``2w - 2`` so set sizes stop leaking range widths);
* :func:`is_member` — the core check ``H(G(x)) ∩ H(Q([a,b])) ≠ ∅``;
* :func:`find_maxima` — the auctioneer's masked max-bid search.

Batching changes *how* digests are computed, never *what* they are: a
:func:`mask_specs` call returns byte-for-byte what per-digest
:func:`mask_prefixes` calls would.  Genuine (unpadded) digests are also
memoized in :mod:`repro.crypto.cache` keyed on the full
``(key, domain, digest size, message set)`` tuple, so a stationary SU's
repeated submissions skip the HMAC work entirely; padding fillers are
*always* drawn fresh from the caller's RNG so the random stream — and
therefore every downstream draw — is identical with the cache hot, cold,
or disabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.crypto.backend import hmac_digest_pairs
from repro.crypto.cache import cache_enabled, get_mask_cache
from repro.prefix.numericalize import numericalize, numericalized_to_bytes
from repro.prefix.prefixes import Prefix, prefix_family
from repro.prefix.ranges import max_cover_size, range_cover
from repro.utils.rng import fresh_rng

__all__ = [
    "DEFAULT_DIGEST_BYTES",
    "MaskedSet",
    "MaskSpec",
    "mask_specs",
    "mask_spec_digests",
    "pad_masked_set",
    "mask_prefixes",
    "mask_value",
    "mask_range",
    "is_member",
    "find_maxima",
]

DEFAULT_DIGEST_BYTES = 16


@dataclass(frozen=True)
class MaskedSet:
    """An unordered set of equal-length HMAC digests.

    ``digests`` is a frozenset so equality/intersection semantics are the
    set-theoretic ones the protocol needs; ``digest_bytes`` is carried along
    purely for wire-size accounting (Theorem 4).
    """

    digests: FrozenSet[bytes]
    digest_bytes: int = DEFAULT_DIGEST_BYTES

    def __post_init__(self) -> None:
        if self.digest_bytes < 4:
            raise ValueError("digest truncation below 4 bytes is unsafe")
        for d in self.digests:
            if len(d) != self.digest_bytes:
                raise ValueError(
                    "all digests in a MaskedSet must have digest_bytes length"
                )

    def __len__(self) -> int:
        return len(self.digests)

    def intersects(self, other: "MaskedSet") -> bool:
        """True when the two masked sets share at least one digest."""
        # frozenset.isdisjoint iterates the smaller operand in C — same
        # semantics as probing each digest of the smaller set, without the
        # Python-level loop this sits under (every membership test in every
        # pairwise conflict/ranking scan lands here).
        return not self.digests.isdisjoint(other.digests)

    def wire_bytes(self) -> int:
        """Serialized size in bytes (cardinality x digest length)."""
        return len(self.digests) * self.digest_bytes


@dataclass(frozen=True)
class MaskSpec:
    """One prefix set awaiting masking: the unit of the batch API.

    ``prefixes`` keeps input order — digest order must match what a
    per-prefix loop would produce so cached and cold results interleave
    transparently.
    """

    key: bytes
    prefixes: Tuple[Prefix, ...]
    domain: bytes = b""
    digest_bytes: int = DEFAULT_DIGEST_BYTES

    @staticmethod
    def of(
        key: bytes,
        prefixes: Iterable[Prefix],
        *,
        domain: bytes = b"",
        digest_bytes: int = DEFAULT_DIGEST_BYTES,
    ) -> "MaskSpec":
        """Build a spec from any prefix iterable (tuple-ifies for hashing)."""
        return MaskSpec(key, tuple(prefixes), domain, digest_bytes)

    def messages(self) -> Tuple[bytes, ...]:
        """The exact HMAC inputs, in prefix order."""
        return tuple(
            self.domain
            + numericalized_to_bytes(numericalize(p), p.width)
            for p in self.prefixes
        )


def mask_spec_digests(specs: Sequence[MaskSpec]) -> List[Tuple[bytes, ...]]:
    """Truncated digests for every spec, in spec/prefix order.

    The workhorse under every ``mask_*`` entry point: cache-hit specs are
    answered from :mod:`repro.crypto.cache`; the misses are flattened into
    a single :func:`hmac_digest_pairs` backend call and written back.  No
    ``prefix.*`` counters fire here — callers count the :class:`MaskedSet`
    objects they actually build (padded sets count their fillers too).
    """
    results: List[Optional[Tuple[bytes, ...]]] = [None] * len(specs)
    cache = get_mask_cache() if cache_enabled() else None
    pending: List[Tuple[int, Tuple[bytes, ...]]] = []
    for index, spec in enumerate(specs):
        messages = spec.messages()
        if cache is not None:
            hit = cache.get((spec.key, spec.domain, spec.digest_bytes, messages))
            if hit is not None:
                results[index] = hit
                continue
        pending.append((index, messages))

    if pending:
        flat = [
            (specs[index].key, message)
            for index, messages in pending
            for message in messages
        ]
        digests = hmac_digest_pairs(flat)
        cursor = 0
        for index, messages in pending:
            spec = specs[index]
            truncated = tuple(
                d[: spec.digest_bytes]
                for d in digests[cursor : cursor + len(messages)]
            )
            cursor += len(messages)
            results[index] = truncated
            if cache is not None:
                cache.put(
                    (spec.key, spec.domain, spec.digest_bytes, messages), truncated
                )
    return results  # type: ignore[return-value]


def mask_specs(specs: Sequence[MaskSpec]) -> List[MaskedSet]:
    """Mask every spec'd prefix set in one backend batch.

    Equivalent, digest for digest, to calling :func:`mask_prefixes` once
    per spec — the property-test suite asserts exactly that.
    """
    out = []
    for spec, digests in zip(specs, mask_spec_digests(specs)):
        masked = MaskedSet(frozenset(digests), digest_bytes=spec.digest_bytes)
        obs.count("prefix.masked_sets")
        obs.count("prefix.masked_digests", len(masked))
        out.append(masked)
    return out


def pad_masked_set(
    digests: Set[bytes],
    *,
    ceiling: int,
    digest_bytes: int,
    rng: random.Random,
) -> MaskedSet:
    """Pad genuine digests with random fillers up to ``ceiling`` and seal.

    Fillers come from the caller's RNG at call time — never from a cache —
    so draw order is bit-identical whether the genuine digests were
    computed or recalled.  A filler colliding with an existing digest is
    simply redrawn by the ``while``, matching the historical behaviour.
    """
    while len(digests) < ceiling:
        digests.add(rng.getrandbits(8 * digest_bytes).to_bytes(digest_bytes, "big"))
    obs.count("prefix.masked_sets")
    obs.count("prefix.masked_digests", len(digests))
    return MaskedSet(frozenset(digests), digest_bytes=digest_bytes)


def mask_prefixes(
    key: bytes,
    prefixes: Sequence[Prefix],
    *,
    domain: bytes = b"",
    digest_bytes: int = DEFAULT_DIGEST_BYTES,
) -> MaskedSet:
    """HMAC-mask an explicit prefix collection.

    ``domain`` is a context label prepended to every HMAC input.  The paper
    keys x- and y-coordinates identically; we add domain separation as a
    conservative hardening — it never changes protocol results because a
    family and the ranges it is tested against always share a domain.
    """
    return mask_specs(
        [MaskSpec.of(key, prefixes, domain=domain, digest_bytes=digest_bytes)]
    )[0]


def mask_value(
    key: bytes,
    x: int,
    width: int,
    *,
    domain: bytes = b"",
    digest_bytes: int = DEFAULT_DIGEST_BYTES,
) -> MaskedSet:
    """Mask the prefix family ``G(x)`` — always ``width + 1`` digests."""
    return mask_prefixes(
        key, prefix_family(x, width), domain=domain, digest_bytes=digest_bytes
    )


def mask_range(
    key: bytes,
    low: int,
    high: int,
    width: int,
    *,
    domain: bytes = b"",
    digest_bytes: int = DEFAULT_DIGEST_BYTES,
    pad_to: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> MaskedSet:
    """Mask the range cover ``Q([low, high])``.

    With ``pad_to`` set (the advanced scheme uses ``2w - 2``), random filler
    digests are appended so the set's cardinality stops revealing how wide
    the range is.  Fillers are drawn from the full digest space, so the
    probability that one collides with a genuine masked prefix — which would
    flip a membership test — is about ``2**-(8*digest_bytes - 6)`` per set
    and is ignored, exactly as the paper does.
    """
    cover = range_cover(low, high, width)
    spec = MaskSpec.of(key, cover, domain=domain, digest_bytes=digest_bytes)
    digests = set(mask_spec_digests([spec])[0])
    if pad_to is None:
        obs.count("prefix.masked_sets")
        obs.count("prefix.masked_digests", len(digests))
        return MaskedSet(frozenset(digests), digest_bytes=digest_bytes)
    ceiling = max(pad_to, max_cover_size(width))
    if rng is None:
        rng = fresh_rng()
    return pad_masked_set(
        digests, ceiling=ceiling, digest_bytes=digest_bytes, rng=rng
    )


def is_member(masked_family: MaskedSet, masked_range: MaskedSet) -> bool:
    """The prefix membership check: ``x in [a, b]`` on masked data.

    Correct whenever both sets were produced under the same key and domain:
    ``H(G(x))`` intersects ``H(Q([a, b]))`` iff ``x`` lies in ``[a, b]``
    (up to the negligible filler-collision probability noted above).
    """
    obs.count("prefix.membership_checks")
    return masked_family.intersects(masked_range)


def find_maxima(
    families: Sequence[MaskedSet], tail_ranges: Sequence[MaskedSet]
) -> List[int]:
    """Indices of maximal bids, given masked families and ``[b_a, bmax]`` covers.

    Bid ``i`` is maximal iff its family intersects *every* submitted tail
    range (equation (3) of the paper): ``G(b_i) ∩ Q([b_a, bmax]) ≠ ∅`` means
    ``b_i >= b_a``.  Ties are genuine — equal bids are indistinguishable
    under the masking — so all maximal indices are returned and the caller
    breaks ties (the allocation algorithm picks uniformly at random).
    """
    if len(families) != len(tail_ranges):
        raise ValueError("families and tail_ranges must align")
    obs.count("prefix.find_maxima")
    return [
        i
        for i, family in enumerate(families)
        if all(is_member(family, rng_set) for rng_set in tail_ranges)
    ]
