"""Minimal prefix cover ``Q([a, b])`` of an integer range (section II.B).

Converting a range to the minimal set of disjoint prefixes whose union is
exactly the range is the classical IP-routing trick (Gupta & McKeown [15]):
walk the binary trie and emit every maximal subtree fully inside the range.
For ``w``-bit numbers the cover never exceeds ``2w - 2`` prefixes, which is
why the advanced bid scheme pads every masked range set to exactly that size.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.prefix.prefixes import Prefix

__all__ = ["range_cover", "max_cover_size"]


def max_cover_size(width: int) -> int:
    """Worst-case cover cardinality ``2w - 2`` for ``w >= 2`` (else 1)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return max(1, 2 * width - 2)


def range_cover(low: int, high: int, width: int) -> List[Prefix]:
    """Minimal set of prefixes whose union is exactly ``[low, high]``.

    The prefixes are pairwise disjoint and returned in increasing order of
    their covered interval.  ``low``/``high`` are clamped callers' business:
    both must already be valid ``width``-bit values with ``low <= high``.
    Memoized: covers are pure functions of their arguments, and the bid
    protocols rebuild the same tail ranges every round.

    Examples
    --------
    >>> [str(p) for p in range_cover(6, 14, 4)]
    ['011*', '10**', '110*', '1110']
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not 0 <= low <= high < (1 << width):
        raise ValueError(
            f"[{low}, {high}] is not a valid {width}-bit range"
        )
    return list(_range_cover_cached(low, high, width))


@lru_cache(maxsize=65536)
def _range_cover_cached(low: int, high: int, width: int) -> Tuple[Prefix, ...]:
    cover: List[Prefix] = []
    # Iterative trie walk: a stack of candidate prefixes, refined until each
    # is either fully inside (emit) or partially overlapping (split).
    stack = [Prefix(0, 0, width)]
    while stack:
        node = stack.pop()
        if node.low >= low and node.high <= high:
            cover.append(node)
            continue
        if node.high < low or node.low > high:
            continue
        left, right = node.children()
        # Push right first so the left subtree is processed first and the
        # output comes out sorted by interval.
        stack.append(right)
        stack.append(left)
    return tuple(cover)
