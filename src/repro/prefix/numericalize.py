"""Prefix numericalization ``O(.)`` (section II.B).

HMAC consumes byte strings, not wildcard patterns, so every prefix is first
converted to a unique ``(w + 1)``-bit number: the fixed bits, then a
separator ``1``, then zeros for the wildcards.  E.g. ``O(110*) = 11010``.
The mapping is injective over prefixes of a common width, which is exactly
what the equality-only comparison of HMAC outputs requires.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.prefix.prefixes import Prefix

__all__ = ["numericalize", "numericalize_set", "numericalized_to_bytes"]


def numericalize(prefix: Prefix) -> int:
    """Map a prefix to its unique ``(width + 1)``-bit number.

    ``t1 ... ts * ... *`` becomes ``t1 ... ts 1 0 ... 0``.

    >>> from repro.prefix.prefixes import Prefix
    >>> bin(numericalize(Prefix(0b110, 3, 4)))
    '0b11010'
    """
    wildcards = prefix.width - prefix.length
    return (prefix.value << (wildcards + 1)) | (1 << wildcards)


def numericalize_set(prefixes: Iterable[Prefix]) -> List[int]:
    """Numericalize every prefix, preserving order."""
    return [numericalize(p) for p in prefixes]


def numericalized_to_bytes(value: int, width: int) -> bytes:
    """Fixed-size big-endian encoding of a numericalized prefix.

    All numericalized prefixes of ``width``-bit numbers fit in ``width + 1``
    bits; a fixed-length encoding keeps the HMAC input unambiguous across
    prefixes (no length extension games between e.g. ``0b110`` and ``0b0110``).
    """
    n_bytes = (width + 1 + 7) // 8
    return value.to_bytes(n_bytes, "big")
