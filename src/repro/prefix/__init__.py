"""Prefix membership verification — the building block of PPBS.

Implements the SafeQ-style machinery the paper builds on: prefix families
``G(x)``, minimal range covers ``Q([a, b])``, numericalization ``O(.)``, and
HMAC-masked set membership / max-finding.
"""

from repro.prefix.membership import (
    DEFAULT_DIGEST_BYTES,
    MaskedSet,
    find_maxima,
    is_member,
    mask_prefixes,
    mask_range,
    mask_value,
)
from repro.prefix.multidim import (
    MaskedBox,
    MaskedPoint,
    mask_box,
    mask_point,
    point_in_box,
)
from repro.prefix.numericalize import (
    numericalize,
    numericalize_set,
    numericalized_to_bytes,
)
from repro.prefix.prefixes import Prefix, bit_width_for, prefix_family
from repro.prefix.ranges import max_cover_size, range_cover

__all__ = [
    "DEFAULT_DIGEST_BYTES",
    "MaskedSet",
    "find_maxima",
    "is_member",
    "mask_prefixes",
    "mask_range",
    "mask_value",
    "MaskedBox",
    "MaskedPoint",
    "mask_box",
    "mask_point",
    "point_in_box",
    "numericalize",
    "numericalize_set",
    "numericalized_to_bytes",
    "Prefix",
    "bit_width_for",
    "prefix_family",
    "max_cover_size",
    "range_cover",
]
