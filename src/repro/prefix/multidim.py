"""Multi-dimensional prefix membership verification.

The paper picks the SafeQ machinery partly because it "could be efficiently
extended to multi-dimensional data utilization [11]".  The location
protocol is exactly such a use — a conjunctive 2-D box query — and this
module provides the general d-dimensional abstraction:

* :class:`MaskedPoint` — one masked prefix family per coordinate;
* :class:`MaskedBox` — one masked range cover per axis interval;
* :func:`point_in_box` — the conjunctive test: the point lies in the box
  iff *every* axis family intersects the corresponding axis cover.

Correctness is inherited axis-wise from the 1-D scheme; domain separation
per axis prevents a value on axis 0 matching a range on axis 1 under the
shared key.  :mod:`repro.lppa.location` is the 2-D instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.prefix.membership import (
    DEFAULT_DIGEST_BYTES,
    MaskedSet,
    MaskSpec,
    is_member,
    mask_specs,
)
from repro.prefix.prefixes import prefix_family
from repro.prefix.ranges import range_cover

__all__ = ["MaskedPoint", "MaskedBox", "mask_point", "mask_box", "point_in_box"]


def _axis_domain(axis: int) -> bytes:
    return b"repro/multidim/axis-" + str(axis).encode("ascii")


@dataclass(frozen=True)
class MaskedPoint:
    """A d-dimensional value, masked one prefix family per axis."""

    families: Tuple[MaskedSet, ...]

    def __post_init__(self) -> None:
        if not self.families:
            raise ValueError("a point needs at least one dimension")

    @property
    def dimensions(self) -> int:
        return len(self.families)

    def wire_bytes(self) -> int:
        """Total masked payload bytes across all axes."""
        return sum(f.wire_bytes() for f in self.families)


@dataclass(frozen=True)
class MaskedBox:
    """An axis-aligned d-dimensional box, masked one range cover per axis."""

    covers: Tuple[MaskedSet, ...]

    def __post_init__(self) -> None:
        if not self.covers:
            raise ValueError("a box needs at least one dimension")

    @property
    def dimensions(self) -> int:
        return len(self.covers)

    def wire_bytes(self) -> int:
        """Total masked payload bytes across all axes."""
        return sum(c.wire_bytes() for c in self.covers)


def mask_point(
    key: bytes,
    coordinates: Sequence[int],
    widths: Sequence[int],
    *,
    digest_bytes: int = DEFAULT_DIGEST_BYTES,
) -> MaskedPoint:
    """Mask a point; ``widths[i]`` is axis i's bit width."""
    if len(coordinates) != len(widths):
        raise ValueError("one width per coordinate required")
    # All axes go through one backend batch.
    return MaskedPoint(
        families=tuple(
            mask_specs(
                [
                    MaskSpec.of(
                        key,
                        prefix_family(coordinate, width),
                        domain=_axis_domain(axis),
                        digest_bytes=digest_bytes,
                    )
                    for axis, (coordinate, width) in enumerate(
                        zip(coordinates, widths)
                    )
                ]
            )
        )
    )


def mask_box(
    key: bytes,
    intervals: Sequence[Tuple[int, int]],
    widths: Sequence[int],
    *,
    digest_bytes: int = DEFAULT_DIGEST_BYTES,
) -> MaskedBox:
    """Mask a box given per-axis closed intervals ``(low, high)``."""
    if len(intervals) != len(widths):
        raise ValueError("one width per interval required")
    covers = mask_specs(
        [
            MaskSpec.of(
                key,
                range_cover(low, high, width),
                domain=_axis_domain(axis),
                digest_bytes=digest_bytes,
            )
            for axis, ((low, high), width) in enumerate(zip(intervals, widths))
        ]
    )
    return MaskedBox(covers=tuple(covers))


def point_in_box(point: MaskedPoint, box: MaskedBox) -> bool:
    """Conjunctive membership: inside iff every axis test passes."""
    if point.dimensions != box.dimensions:
        raise ValueError(
            f"dimension mismatch: point {point.dimensions}-D, "
            f"box {box.dimensions}-D"
        )
    return all(
        is_member(family, cover)
        for family, cover in zip(point.families, box.covers)
    )
