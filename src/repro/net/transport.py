"""Pluggable stream transports for the network runtime.

One interface, two implementations:

* :class:`MemoryTransport` — in-process duplex byte pipes with a real
  high-water mark (writers block while the peer's unread buffer is over
  the limit), used by the deterministic tests and the default ``repro
  loadgen`` mode;
* :class:`TcpTransport` — real sockets via :func:`asyncio.start_server` /
  :func:`asyncio.open_connection`.

Both hand endpoints a :class:`Connection`: ``readexactly`` /
``write`` (awaitable, drains — this is where per-connection backpressure
lives) / ``close`` / ``wait_closed``.  A peer disappearing surfaces as
:class:`asyncio.IncompleteReadError` or :class:`ConnectionError` from the
read side and :class:`TransportClosed` from the write side; endpoint code
treats all three as "the connection is gone".
"""

from __future__ import annotations

import abc
import asyncio
import contextlib
from typing import Awaitable, Callable, List, Optional, Tuple

__all__ = [
    "TransportClosed",
    "Connection",
    "Transport",
    "MemoryTransport",
    "TcpTransport",
    "memory_pair",
]

#: Unread bytes a memory-pipe peer may buffer before writers block.
DEFAULT_PIPE_LIMIT = 64 * 1024

ConnectionHandler = Callable[["Connection"], Awaitable[None]]


class TransportClosed(ConnectionError):
    """Writing to (or connecting over) a transport that has gone away."""


class Connection(abc.ABC):
    """One bidirectional byte stream between two endpoints."""

    @abc.abstractmethod
    async def readexactly(self, n: int) -> bytes:
        """Read exactly ``n`` bytes; :class:`asyncio.IncompleteReadError`
        when the peer closes first."""

    @abc.abstractmethod
    async def write(self, data: bytes) -> None:
        """Write and drain; blocks while the peer applies backpressure."""

    @abc.abstractmethod
    def close(self) -> None:
        """Start closing both directions (idempotent)."""

    @abc.abstractmethod
    async def wait_closed(self) -> None:
        """Wait for the close to finish."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Human-readable endpoint name for logs and errors."""


class _MemoryChannel:
    """One direction of a memory duplex: sync feed, async read, high-water mark.

    Built on :class:`asyncio.StreamReader` for the buffering/EOF machinery;
    the channel adds the unread-byte accounting that gives writers real
    backpressure (``feed`` is gated on :meth:`writable`).
    """

    def __init__(self, limit: int) -> None:
        self._reader = asyncio.StreamReader()
        self._limit = limit
        self._unread = 0
        self._writable = asyncio.Event()
        self._writable.set()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    async def wait_writable(self) -> None:
        await self._writable.wait()

    def feed(self, data: bytes) -> None:
        if self._closed:
            raise TransportClosed("peer closed the memory channel")
        self._reader.feed_data(data)
        self._unread += len(data)
        if self._unread > self._limit:
            self._writable.clear()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._reader.feed_eof()
            # Unblock writers parked on the high-water mark; their next
            # feed() raises TransportClosed.
            self._writable.set()

    async def readexactly(self, n: int) -> bytes:
        data = await self._reader.readexactly(n)
        self._unread -= len(data)
        if self._unread <= self._limit and not self._closed:
            self._writable.set()
        return data


class MemoryConnection(Connection):
    """One end of an in-process duplex pipe."""

    def __init__(self, rx: _MemoryChannel, tx: _MemoryChannel, label: str) -> None:
        self._rx = rx
        self._tx = tx
        self._label = label

    async def readexactly(self, n: int) -> bytes:
        return await self._rx.readexactly(n)

    async def write(self, data: bytes) -> None:
        if self._tx.closed:
            raise TransportClosed(f"{self._label}: peer gone")
        await self._tx.wait_writable()
        self._tx.feed(data)

    def close(self) -> None:
        self._tx.close()
        self._rx.close()

    async def wait_closed(self) -> None:
        return None

    @property
    def label(self) -> str:
        return self._label


def memory_pair(
    limit: int = DEFAULT_PIPE_LIMIT,
) -> Tuple[MemoryConnection, MemoryConnection]:
    """A connected duplex pair (client end, server end)."""
    a_to_b = _MemoryChannel(limit)
    b_to_a = _MemoryChannel(limit)
    client = MemoryConnection(rx=b_to_a, tx=a_to_b, label="mem-client")
    server = MemoryConnection(rx=a_to_b, tx=b_to_a, label="mem-server")
    return client, server


class Transport(abc.ABC):
    """Factory for connections: one listener side, many dialers."""

    @abc.abstractmethod
    async def listen(self, handler: ConnectionHandler) -> None:
        """Start accepting; every inbound connection runs ``handler``."""

    @abc.abstractmethod
    async def connect(self) -> Connection:
        """Dial the listener; returns the client end."""

    @abc.abstractmethod
    async def close(self) -> None:
        """Stop accepting and tear down what the transport owns."""

    @property
    @abc.abstractmethod
    def address(self) -> str:
        """Where the listener is reachable (for logs / CLI output)."""


class MemoryTransport(Transport):
    """In-process transport: ``connect()`` pairs pipes with the listener."""

    def __init__(self, *, limit: int = DEFAULT_PIPE_LIMIT) -> None:
        self._limit = limit
        self._handler: Optional[ConnectionHandler] = None
        self._tasks: List[asyncio.Task] = []

    async def listen(self, handler: ConnectionHandler) -> None:
        self._handler = handler

    async def connect(self) -> Connection:
        if self._handler is None:
            raise TransportClosed("memory transport is not listening")
        client, server = memory_pair(self._limit)
        task = asyncio.ensure_future(self._handler(server))
        self._tasks.append(task)
        return client

    async def close(self) -> None:
        self._handler = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._tasks.clear()

    @property
    def address(self) -> str:
        return "memory://"


class TcpConnection(Connection):
    """A real socket pair wrapped to the :class:`Connection` interface."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        peer = writer.get_extra_info("peername")
        self._label = f"tcp:{peer[0]}:{peer[1]}" if peer else "tcp:?"

    async def readexactly(self, n: int) -> bytes:
        return await self._reader.readexactly(n)

    async def write(self, data: bytes) -> None:
        if self._writer.is_closing():
            raise TransportClosed(f"{self._label}: connection closing")
        try:
            self._writer.write(data)
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportClosed(f"{self._label}: {exc}") from exc

    def close(self) -> None:
        with contextlib.suppress(RuntimeError):
            self._writer.close()

    async def wait_closed(self) -> None:
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    @property
    def label(self) -> str:
        return self._label


class TcpTransport(Transport):
    """TCP via asyncio streams.  ``port=0`` binds an ephemeral port; the
    bound address is available from :attr:`address` after :meth:`listen`.

    A dial-only transport (``repro loadgen --connect``) never calls
    ``listen`` — ``connect()`` just dials the configured endpoint.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def listen(self, handler: ConnectionHandler) -> None:
        async def on_client(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            conn = TcpConnection(reader, writer)
            try:
                await handler(conn)
            finally:
                conn.close()
                await conn.wait_closed()

        self._server = await asyncio.start_server(on_client, self._host, self._port)
        self._port = self._server.sockets[0].getsockname()[1]

    async def connect(self) -> Connection:
        try:
            reader, writer = await asyncio.open_connection(self._host, self._port)
        except OSError as exc:
            raise TransportClosed(
                f"tcp:{self._host}:{self._port} refused: {exc}"
            ) from exc
        return TcpConnection(reader, writer)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port
