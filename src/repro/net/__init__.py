"""repro.net — the LPPA protocol over real transports.

The in-process session (:func:`repro.lppa.session.run_lppa_auction`) calls
every role as a function; this package runs the same round as an actual
message exchange: an asyncio auctioneer server with an explicit phase
state machine and deadlines, SU clients with timeout/retry, a
periodically-online TTP service, and a versioned frame envelope over the
:mod:`repro.lppa.codec` wire format — all behind one transport interface
with in-memory and TCP implementations.  With entropy-labelled rounds the
networked result is bit-identical to the session's (pinned by the
differential tests in ``tests/net/``).
"""

from repro.net.frames import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameType,
    decode_frame,
    encode_frame,
    pack_json,
    read_frame,
    unpack_json,
    write_frame,
)
from repro.net.transport import (
    Connection,
    MemoryTransport,
    TcpTransport,
    Transport,
    TransportClosed,
    memory_pair,
)
from repro.net.ttp_service import TtpService, TtpServiceStats
from repro.net.server import (
    AuctioneerServer,
    NetRoundReport,
    RoundAborted,
    RoundPhase,
    ServerConfig,
    WireStats,
)
from repro.net.client import (
    ClientRound,
    ProtocolError,
    RetryPolicy,
    ServerGoodbye,
    SUClient,
)
from repro.net.loadgen import (
    EquivalenceFailure,
    LoadgenConfig,
    LoadgenReport,
    build_population,
    protocol_seed,
    round_entropy,
    run_loadgen,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameType",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "pack_json",
    "unpack_json",
    "Connection",
    "Transport",
    "TransportClosed",
    "MemoryTransport",
    "TcpTransport",
    "memory_pair",
    "TtpService",
    "TtpServiceStats",
    "AuctioneerServer",
    "ServerConfig",
    "NetRoundReport",
    "RoundAborted",
    "RoundPhase",
    "WireStats",
    "SUClient",
    "ClientRound",
    "RetryPolicy",
    "ProtocolError",
    "ServerGoodbye",
    "LoadgenConfig",
    "LoadgenReport",
    "EquivalenceFailure",
    "build_population",
    "protocol_seed",
    "round_entropy",
    "run_loadgen",
]
