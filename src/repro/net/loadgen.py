"""Load generation and differential checking for the network runtime.

``repro loadgen`` drives N concurrent :class:`~repro.net.client.SUClient`
coroutines against an :class:`~repro.net.server.AuctioneerServer` — either
one it hosts itself (memory or TCP transport) or a remote ``repro serve``
process (``--connect``) — and reports throughput (rounds/sec), p50/p95
round latency and exact bytes on the wire.

Determinism ties the whole thing together: the protocol seed and the
per-round entropy labels are pure functions of the loadgen seed, and the
SU population is regenerated from the same
``make_database``/``generate_users`` recipe the CLI uses everywhere else.
``check_equivalence=True`` therefore re-runs every round through the
in-process :func:`~repro.lppa.session.run_lppa_auction` and demands a
bit-identical :class:`~repro.lppa.session.LppaResult` (self-hosted mode)
or an identical RESULT wire summary (connect mode, where the keyring is
re-derived locally from the shared seed — the paper's out-of-band key
distribution).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.auction.bidders import SecondaryUser, generate_users
from repro.geo.datasets import make_database
from repro.geo.grid import GridSpec
from repro.lppa.batching import TtpSchedule
from repro.lppa.policies import KeepZeroPolicy, UniformReplacePolicy
from repro.lppa.session import LppaResult, run_lppa_auction
from repro.lppa.ttp import TrustedThirdParty
from repro.net.client import RetryPolicy, SUClient
from repro.net.server import AuctioneerServer, NetRoundReport, ServerConfig
from repro.net.transport import MemoryTransport, TcpTransport, Transport
from repro.net.ttp_service import TtpService
from repro import obs
from repro.obs.clock import monotonic
from repro.obs.hist import Histogram

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "EquivalenceFailure",
    "build_population",
    "protocol_seed",
    "round_entropy",
    "run_loadgen",
]

#: Compared field-by-field between the networked and in-process results.
_RESULT_FIELDS = (
    "outcome",
    "conflict_graph",
    "rankings",
    "location_bytes",
    "bid_bytes",
    "masked_set_bytes",
    "framed_bytes",
)


class EquivalenceFailure(AssertionError):
    """A networked round diverged from the in-process session."""


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything one loadgen run needs; all defaults are CI-sized."""

    n_users: int = 8
    n_channels: int = 6
    rounds: int = 3
    seed: int = 1
    area: int = 4
    grid_n: int = 20
    two_lambda: int = 6
    bmax: int = 127
    replace: float = 0.0
    #: Privacy scheme the self-hosted server announces; clients pick it up
    #: from the WELCOME frame, so connect mode ignores this field.
    scheme: str = "ppbs"
    transport: str = "memory"  # "memory" | "tcp"
    host: str = "127.0.0.1"
    port: int = 0
    connect: Optional[str] = None  # "host:port" -> dial a running server
    check_equivalence: bool = False
    location_deadline: float = 10.0
    bid_deadline: float = 10.0
    ttp_period: Optional[int] = None
    ttp_capacity: Optional[int] = None
    frame_timeout: float = 30.0
    #: Keep every raw latency sample for exact-sort percentiles.  Off by
    #: default so multi-hour runs stay bounded: the histogram alone costs
    #: a fixed ~100 buckets no matter how many rounds complete.
    raw_latencies: bool = False
    #: Keep one latency histogram *per round/epoch* besides the aggregate,
    #: so warm-up rounds cannot skew a steady-state tail percentile.  Costs
    #: O(rounds) bounded histograms; disable for unbounded multi-hour runs.
    per_epoch_hists: bool = True
    #: Which per-round entropy labels the run derives: ``"loadgen"``
    #: (:func:`round_entropy`, the `repro serve` pairing) or ``"service"``
    #: (:func:`repro.service.scheduler.service_entropy`, for driving or
    #: checking against a ``repro serve --epochs`` epoch loop).
    entropy_scheme: str = "loadgen"

    def __post_init__(self) -> None:
        if self.transport not in ("memory", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if self.entropy_scheme not in ("loadgen", "service"):
            raise ValueError(f"unknown entropy scheme {self.entropy_scheme!r}")


@dataclass
class LoadgenReport:
    """What one loadgen run measured."""

    address: str
    n_users: int
    rounds_completed: int
    elapsed_s: float
    latency_hist: Histogram = field(default_factory=Histogram)
    #: Per-round/epoch histograms (key: round or epoch index).  The
    #: aggregate ``latency_hist`` always folds everything; these exist so
    #: steady-state percentiles can exclude warm-up epochs.
    epoch_hists: Dict[int, Histogram] = field(default_factory=dict)
    raw_latencies_s: Optional[List[float]] = None
    wire_bytes: int = 0
    round_summaries: List[Dict[str, Any]] = field(default_factory=list)
    stragglers: int = 0
    equivalence_checked: int = 0

    def record_latency(self, seconds: float, *, epoch: Optional[int] = None) -> None:
        """Fold one round latency into the bounded histogram (and, when
        the ``raw_latencies`` escape hatch is on, the exact sample list).

        With ``epoch`` given, the sample additionally lands in that
        epoch's own histogram — the aggregate keeps folding everything, so
        existing consumers see no change, while steady-state consumers can
        slice warm-up epochs away (:meth:`steady_histogram`).
        """
        self.latency_hist.observe(seconds)
        if epoch is not None:
            hist = self.epoch_hists.get(epoch)
            if hist is None:
                hist = self.epoch_hists[epoch] = Histogram()
            hist.observe(seconds)
        if self.raw_latencies_s is not None:
            self.raw_latencies_s.append(seconds)

    def steady_histogram(self, warmup: int = 1) -> Histogram:
        """Latencies of epochs ``>= warmup`` merged into one histogram.

        Without per-epoch data (``per_epoch_hists=False``, or a report
        predating them) this degrades to a copy of the aggregate — the
        permissive reading, matching the old folded-together behaviour.
        """
        if not self.epoch_hists:
            return self.latency_hist.copy()
        steady = Histogram()
        for epoch, hist in self.epoch_hists.items():
            if epoch >= warmup:
                steady.merge(hist)
        return steady

    def epoch_quantile(self, epoch: int, q: float) -> float:
        """One epoch's latency quantile (0.0 when the epoch has no data)."""
        hist = self.epoch_hists.get(epoch)
        return hist.quantile(q) if hist is not None else 0.0

    @property
    def rounds_per_sec(self) -> float:
        return self.rounds_completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def _quantile(self, q: float) -> float:
        if self.raw_latencies_s is not None:
            return _percentile(self.raw_latencies_s, q)
        return self.latency_hist.quantile(q)

    @property
    def p50_latency_s(self) -> float:
        return self._quantile(0.50)

    @property
    def p95_latency_s(self) -> float:
        return self._quantile(0.95)

    @property
    def p99_latency_s(self) -> float:
        return self._quantile(0.99)

    def record_metrics(self, *, steady_warmup: Optional[int] = None) -> None:
        """Fold the SLO summary into the active obs registry, if any.

        Gives ``repro loadgen --metrics`` artifact keys for the latency
        tail (``net.loadgen.latency_p50/p95/p99``), throughput and wire
        volume, so ``repro metrics diff`` can flag tail regressions.

        ``steady_warmup`` (the soak driver passes its warm-up epoch count)
        additionally emits the steady-state histogram and percentiles
        (``net.loadgen.steady_latency*``) with the first ``steady_warmup``
        epochs excluded, so SLO gates on the tail are not diluted by cold
        caches and connection ramp.
        """
        if obs.get_active() is None:
            return
        obs.record_seconds("net.loadgen.latency_p50", self.p50_latency_s)
        obs.record_seconds("net.loadgen.latency_p95", self.p95_latency_s)
        obs.record_seconds("net.loadgen.latency_p99", self.p99_latency_s)
        obs.record_seconds("net.loadgen.elapsed", self.elapsed_s)
        obs.merge_histogram("net.loadgen.latency", self.latency_hist)
        obs.count("net.loadgen.rounds", self.rounds_completed)
        obs.count("net.loadgen.wire_bytes", self.wire_bytes)
        obs.count("net.loadgen.stragglers", self.stragglers)
        if steady_warmup is not None:
            steady = self.steady_histogram(steady_warmup)
            if steady.count:
                obs.merge_histogram("net.loadgen.steady_latency", steady)
                obs.record_seconds(
                    "net.loadgen.steady_latency_p50", steady.quantile(0.50)
                )
                obs.record_seconds(
                    "net.loadgen.steady_latency_p95", steady.quantile(0.95)
                )
                obs.record_seconds(
                    "net.loadgen.steady_latency_p99", steady.quantile(0.99)
                )

    def format(self, *, steady_warmup: Optional[int] = None) -> str:
        """The human-readable report the ``repro loadgen`` CLI prints."""
        lines = [
            f"loadgen: {self.n_users} SUs x {self.rounds_completed} rounds "
            f"against {self.address}",
            f"  throughput   {self.rounds_per_sec:.2f} rounds/sec "
            f"({self.elapsed_s:.3f}s total)",
            f"  latency      p50 {self.p50_latency_s * 1e3:.2f} ms, "
            f"p95 {self.p95_latency_s * 1e3:.2f} ms, "
            f"p99 {self.p99_latency_s * 1e3:.2f} ms",
            f"  wire         {self.wire_bytes} bytes",
            f"  stragglers   {self.stragglers}",
        ]
        if steady_warmup is not None and self.epoch_hists:
            steady = self.steady_histogram(steady_warmup)
            if steady.count:
                lines.insert(
                    3,
                    f"  steady       p50 {steady.quantile(0.50) * 1e3:.2f} ms, "
                    f"p95 {steady.quantile(0.95) * 1e3:.2f} ms, "
                    f"p99 {steady.quantile(0.99) * 1e3:.2f} ms "
                    f"(epochs >= {steady_warmup})",
                )
        if self.equivalence_checked:
            lines.append(
                f"  equivalence  OK ({self.equivalence_checked} rounds "
                "bit-identical to the in-process session)"
            )
        for summary in self.round_summaries:
            lines.append(
                f"  round {summary['round']}: {summary['winners']} winners, "
                f"revenue {summary['revenue']}, "
                f"{summary['framed_bytes']} framed bytes"
            )
        return "\n".join(lines)


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def protocol_seed(seed: int) -> bytes:
    """TTP setup seed as a function of the loadgen seed (shared by the
    server and a ``--connect`` client fleet deriving keys locally)."""
    return f"net:{seed}".encode()


def round_entropy(seed: int, round_index: int) -> str:
    """The entropy label of round ``round_index`` under loadgen ``seed``."""
    return f"net-loadgen:{seed}:{round_index}"


def _entropy(config: LoadgenConfig, round_index: int) -> str:
    """This run's entropy label for one round, per the configured scheme.

    The ``"service"`` branch must stay byte-identical to
    :func:`repro.service.scheduler.service_entropy` (asserted by the
    service test suite); it is inlined here because :mod:`repro.service`
    imports this module.
    """
    if config.entropy_scheme == "service":
        return f"service:{config.seed}:{round_index}"
    return round_entropy(config.seed, round_index)


def build_population(
    config: LoadgenConfig,
) -> Tuple[GridSpec, List[SecondaryUser]]:
    """The CLI's standard population recipe, keyed only by the config."""
    grid = GridSpec(
        rows=config.grid_n, cols=config.grid_n, cell_km=75.0 / config.grid_n
    )
    database = make_database(config.area, n_channels=config.n_channels, grid=grid)
    users = generate_users(database, config.n_users, random.Random(config.seed))
    return grid, users


def _policy(config: LoadgenConfig):
    if config.replace > 0:
        return UniformReplacePolicy(config.replace)
    return KeepZeroPolicy()


def _session_result(
    config: LoadgenConfig,
    users: Sequence[SecondaryUser],
    grid: GridSpec,
    round_index: int,
    scheme: Optional[str] = None,
) -> LppaResult:
    return run_lppa_auction(
        users,
        grid,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        seed=protocol_seed(config.seed),
        policy=_policy(config),
        entropy=_entropy(config, round_index),
        scheme=config.scheme if scheme is None else scheme,
    )


def check_result_equivalence(net: LppaResult, session: LppaResult) -> None:
    """Field-by-field comparison; raises :class:`EquivalenceFailure`.

    ``disclosures`` is exempt: it is SU-private material that never crosses
    the wire, so the networked result legitimately carries an empty tuple.
    """
    for name in _RESULT_FIELDS:
        net_value = getattr(net, name)
        session_value = getattr(session, name)
        if net_value != session_value:
            raise EquivalenceFailure(
                f"networked round diverged from the session on {name}: "
                f"{net_value!r} != {session_value!r}"
            )


def _check_wire_summary(
    doc: Dict[str, Any], session: LppaResult, round_index: int
) -> None:
    """Connect-mode equivalence: the RESULT frame against the local session."""
    expected = {
        "wins": [
            {"su": w.bidder, "channel": w.channel, "charge": w.charge,
             "valid": w.valid}
            for w in session.outcome.wins
        ],
        "revenue": session.outcome.sum_of_winning_bids(),
        "location_bytes": session.location_bytes,
        "bid_bytes": session.bid_bytes,
        "masked_set_bytes": session.masked_set_bytes,
        "framed_bytes": session.framed_bytes,
    }
    for key, want in expected.items():
        got = doc.get(key)
        if got != want:
            raise EquivalenceFailure(
                f"round {round_index}: RESULT {key} diverged: "
                f"{got!r} != {want!r}"
            )


async def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Run the configured load against a server; see the module docstring."""
    grid, users = build_population(config)
    if config.connect is not None:
        return await _run_connect(config, grid, users)
    return await _run_self_hosted(config, grid, users)


def _make_clients(
    config: LoadgenConfig,
    grid: GridSpec,
    users: Sequence[SecondaryUser],
    keyring,
    scale,
    transport: Transport,
) -> List[SUClient]:
    return [
        SUClient(
            su_id,
            user,
            keyring,
            scale,
            grid,
            config.two_lambda,
            transport,
            policy=_policy(config),
            retry=RetryPolicy(),
            frame_timeout=config.frame_timeout,
        )
        for su_id, user in enumerate(users)
    ]


async def _run_self_hosted(
    config: LoadgenConfig,
    grid: GridSpec,
    users: Sequence[SecondaryUser],
) -> LoadgenReport:
    transport: Transport
    if config.transport == "tcp":
        transport = TcpTransport(config.host, config.port)
    else:
        transport = MemoryTransport()
    server_config = ServerConfig(
        n_users=config.n_users,
        n_channels=config.n_channels,
        grid=grid,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        seed=protocol_seed(config.seed),
        location_deadline=config.location_deadline,
        bid_deadline=config.bid_deadline,
        scheme=config.scheme,
    )
    ttp_service: Optional[TtpService] = None
    if config.ttp_period is not None:
        ttp, _, _ = TrustedThirdParty.setup(
            server_config.seed, config.n_channels, bmax=config.bmax
        )
        schedule = TtpSchedule(
            period=config.ttp_period,
            capacity=config.ttp_capacity or config.n_users,
        )
        ttp_service = TtpService(ttp, schedule)
        await ttp_service.start()
    server = AuctioneerServer(server_config, transport, ttp_service=ttp_service)
    await server.start()
    clients = _make_clients(
        config, grid, users, server.keyring, server.scale, transport
    )
    try:
        client_tasks = [
            asyncio.ensure_future(c.run(config.rounds)) for c in clients
        ]
        await server.wait_for_clients(config.n_users, timeout=30.0)
        t0 = monotonic()
        reports: List[NetRoundReport] = []
        for round_index in range(config.rounds):
            reports.append(
                await server.run_round(_entropy(config, round_index))
            )
        elapsed = monotonic() - t0
        await asyncio.gather(*client_tasks)
    finally:
        await server.stop()
        if ttp_service is not None:
            await ttp_service.stop()

    report = LoadgenReport(
        address=server.address,
        n_users=config.n_users,
        rounds_completed=len(reports),
        elapsed_s=elapsed,
        raw_latencies_s=[] if config.raw_latencies else None,
        wire_bytes=server.wire.total_bytes,
        stragglers=sum(len(r.stragglers) for r in reports),
    )
    for r in reports:
        report.record_latency(
            r.latency_s,
            epoch=r.round_index if config.per_epoch_hists else None,
        )
    for r in reports:
        report.round_summaries.append(
            {
                "round": r.round_index,
                "winners": len(r.result.outcome.wins),
                "revenue": r.result.outcome.sum_of_winning_bids(),
                "framed_bytes": r.result.framed_bytes,
            }
        )
        if config.check_equivalence:
            session = _session_result(config, users, grid, r.round_index)
            check_result_equivalence(r.result, session)
            report.equivalence_checked += 1
    return report


async def _run_connect(
    config: LoadgenConfig,
    grid: GridSpec,
    users: Sequence[SecondaryUser],
) -> LoadgenReport:
    host, _, port_text = config.connect.rpartition(":")  # type: ignore[union-attr]
    if not host or not port_text.isdigit():
        raise ValueError(f"--connect wants host:port, got {config.connect!r}")
    transport = TcpTransport(host, int(port_text))
    # Out-of-band key distribution: the TTP setup is deterministic in the
    # shared seed, so the fleet derives the same ring the server holds.
    _, keyring, scale = TrustedThirdParty.setup(
        protocol_seed(config.seed), config.n_channels, bmax=config.bmax
    )
    clients = _make_clients(config, grid, users, keyring, scale, transport)
    t0 = monotonic()
    rounds_per_client = await asyncio.gather(
        *(c.run(config.rounds) for c in clients)
    )
    elapsed = monotonic() - t0

    by_round: Dict[int, Dict[str, Any]] = {}
    report = LoadgenReport(
        address=f"{host}:{port_text}",
        n_users=config.n_users,
        rounds_completed=0,
        elapsed_s=elapsed,
        raw_latencies_s=[] if config.raw_latencies else None,
        wire_bytes=sum(c.bytes_sent + c.bytes_received for c in clients),
        stragglers=0,
    )
    for rounds in rounds_per_client:
        for record in rounds:
            report.record_latency(
                record.latency_s,
                epoch=record.round_index if config.per_epoch_hists else None,
            )
            by_round.setdefault(record.round_index, record.result)
    report.rounds_completed = len(by_round)
    for round_index in sorted(by_round):
        doc = by_round[round_index]
        report.round_summaries.append(
            {
                "round": round_index,
                "winners": len(doc.get("wins", [])),
                "revenue": doc.get("revenue", 0),
                "framed_bytes": doc.get("framed_bytes", 0),
            }
        )
        if config.check_equivalence:
            # The reference session must run the scheme the server announced
            # in its WELCOME frame, not whatever this process defaults to.
            session = _session_result(
                config, users, grid, round_index,
                scheme=clients[0].scheme.name,
            )
            _check_wire_summary(doc, session, round_index)
            report.equivalence_checked += 1
    return report
