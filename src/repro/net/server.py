"""The auctioneer as an asyncio server: an explicit round state machine.

:func:`repro.lppa.session.run_lppa_auction` runs one round as a straight
function call; this server decomposes the same round into the phases the
paper describes as *message exchanges*, driven by real frames over a
:class:`~repro.net.transport.Transport`:

.. code-block:: text

    IDLE ──round──> COLLECT_LOCATIONS ──deadline/all──> COLLECT_BIDS
                 (ROUND_BEGIN out,                   (BID_REQUEST out,
                  LOCATION in)                        BIDS in)
    COLLECT_BIDS ──deadline/all──> ALLOCATE ──> CHARGE ──> IDLE
                                 (rankings +   (TtpService  (RESULT out)
                                  Algorithm 3)  windows)

Semantics:

* **deadlines** — each collect phase waits until every expected SU has
  submitted *or* the phase deadline fires; the round then proceeds with
  whoever arrived (stragglers are excluded from the round, reported in the
  :class:`NetRoundReport`, and any late frame is answered with a clean
  ``ERROR late-submission`` frame rather than a hang);
* **malformed frames** — envelope or payload bytes that fail the strict
  codec path (:func:`repro.net.frames.read_frame` with ``strict=True``,
  :func:`repro.lppa.codec.decode_location` / ``decode_bids``) raise
  :class:`~repro.lppa.codec.CodecError`; the offender gets an ``ERROR
  malformed-frame`` and its connection is closed, without poisoning the
  round for everyone else;
* **backpressure** — every write awaits the transport's drain, and no
  frame larger than ``max_frame_bytes`` is ever buffered (the envelope
  length is validated before payload bytes are read);
* **determinism** — with entropy-labelled rounds
  (:func:`repro.lppa.entropy.derive_round_rngs` contract) and full
  participation, the round's :class:`~repro.lppa.round.results.LppaResult`
  is bit-identical to the in-process session; ``tests/net/test_runtime.py``
  pins this differentially.

Dense user ids: the masked-table layer requires submissions numbered
``0..m-1``.  SUs keep their public ids on the wire; the server remaps the
round's participants to dense slots (sorted by SU id) before the
allocation and maps winner records back for the RESULT broadcast.  With
every expected SU participating the remap is the identity, which is what
makes the differential equivalence exact.

Observability: the four session phase keys (``location_submission``,
``bid_submission``, ``psd_allocation``, ``ttp_charging``) wrap the same
work here, wire messages land in the flight recorder with the same kinds
and visibility tags, and ``net.*`` counters add the runtime's own view
(frames, envelope bytes, deadline expiries, TTP windows).

Structurally the server is the round core's *network driver*: the phases
themselves are the shared :data:`repro.lppa.round.PHASE_STEPS` executed by
:func:`repro.lppa.round.execute_round_async` with the crypto value
backend; :class:`_NetRoundDriver` below contributes only the
transport-facing interaction points (deadline-gated collection, straggler
repair, the TTP service exchange, the RESULT broadcast).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.obs import trace
from repro.obs.clock import monotonic
from repro.obs.live import MetricsHttpServer
from repro.obs.trace import correlation_key
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale
from repro.lppa.codec import CodecError
from repro.lppa.entropy import alloc_rng
from repro.lppa.round import (
    LppaResult,
    PhaseStep,
    RoundDriver,
    RoundState,
    execute_round_async,
)
from repro.lppa.schemes.registry import get_scheme
from repro.lppa.ttp import TrustedThirdParty
from repro.net.frames import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameType,
    pack_json,
    read_frame,
    unpack_json,
    write_frame,
)
from repro.net.transport import Connection, Transport, TransportClosed
from repro.net.ttp_service import TtpService

__all__ = [
    "RoundPhase",
    "ServerConfig",
    "NetRoundReport",
    "WireStats",
    "RoundAborted",
    "AuctioneerServer",
    "ERR_MALFORMED",
    "ERR_LATE",
    "ERR_BAD_HELLO",
    "ERR_DUPLICATE_SU",
    "ERR_UNEXPECTED",
    "ERR_WRONG_USER",
    "ERR_BAD_SUBMISSION",
    "ERR_ROUND_ABORTED",
]

ERR_MALFORMED = "malformed-frame"
ERR_LATE = "late-submission"
ERR_BAD_HELLO = "bad-hello"
ERR_DUPLICATE_SU = "duplicate-su"
ERR_UNEXPECTED = "unexpected-frame"
ERR_WRONG_USER = "wrong-user-id"
ERR_BAD_SUBMISSION = "bad-submission"
ERR_ROUND_ABORTED = "round-aborted"


class RoundPhase(enum.Enum):
    """Where the state machine is; collect phases gate inbound submissions."""

    IDLE = "idle"
    COLLECT_LOCATIONS = "collect-locations"
    COLLECT_BIDS = "collect-bids"
    ALLOCATE = "allocate"
    CHARGE = "charge"


class RoundAborted(RuntimeError):
    """No usable participants survived the collect phases."""


class _CloseConnection(Exception):
    """Internal: the dispatcher decided this peer must be disconnected."""


@dataclass(frozen=True)
class ServerConfig:
    """Protocol parameters plus the runtime's deadlines.

    ``metrics_port`` opts into the OpenMetrics scrape endpoint
    (:class:`~repro.obs.live.MetricsHttpServer`): ``None`` (the default)
    never constructs the endpoint, ``0`` binds an ephemeral port.  The
    endpoint serves whatever the process-wide :mod:`repro.obs` registry is
    collecting, overlaid with the server's runtime gauges.
    """

    n_users: int
    n_channels: int
    grid: GridSpec
    two_lambda: int
    bmax: int
    seed: bytes = b"lppa-session"
    rd: int = 4
    cr: int = 8
    #: Privacy scheme name; non-default schemes tag the WELCOME announcement
    #: so clients encode/decode with the matching codecs.
    scheme: str = "ppbs"
    location_deadline: float = 5.0
    bid_deadline: float = 5.0
    join_deadline: float = 10.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("need at least one expected SU")
        if self.n_channels < 1:
            raise ValueError("need at least one channel")
        if min(self.location_deadline, self.bid_deadline, self.join_deadline) <= 0:
            raise ValueError("deadlines must be positive")


@dataclass
class WireStats:
    """Exact envelope accounting, both directions, server-side."""

    frames_in: int = 0
    bytes_in: int = 0
    frames_out: int = 0
    bytes_out: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_in + self.bytes_out


@dataclass(frozen=True)
class NetRoundReport:
    """One networked round: the protocol result plus runtime accounting."""

    round_index: int
    result: LppaResult
    participants: Tuple[int, ...]  # original SU ids, dense order
    stragglers: Tuple[int, ...]    # roster members that missed a deadline
    latency_s: float


@dataclass
class _ClientState:
    su: int
    conn: Connection
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class AuctioneerServer:
    """Runs LPPA rounds for SUs connected over a transport."""

    def __init__(
        self,
        config: ServerConfig,
        transport: Transport,
        *,
        ttp_service: Optional[TtpService] = None,
    ) -> None:
        self._config = config
        self._transport = transport
        self._scheme = get_scheme(config.scheme)
        ttp, keyring, scale = TrustedThirdParty.setup(
            config.seed,
            config.n_channels,
            bmax=config.bmax,
            rd=config.rd,
            cr=config.cr,
        )
        # The key ring is *TTP/SU* material: this process plays every role
        # (as the in-process session does) and exposes the ring so drivers
        # can hand it to their SU clients "out of band".  The auctioneer
        # code path below never touches it.
        self._keyring = keyring
        self._scale = scale
        self._ttp_service = (
            ttp_service if ttp_service is not None else TtpService(ttp)
        )
        self._owns_ttp_service = ttp_service is None
        self._clients: Dict[int, _ClientState] = {}
        self._client_arrived = asyncio.Event()
        self._roster_changed = asyncio.Event()
        self._phase = RoundPhase.IDLE
        self._round = -1
        self._expected: Set[int] = set()
        self._locations: Dict[int, Any] = {}
        self._bids: Dict[int, Any] = {}
        self._phase_done = asyncio.Event()
        self.wire = WireStats()
        # Both ends of every connection derive this from the WELCOME
        # announcement, so server, clients and TTP stamp the same trace
        # session without a single extra wire byte.
        self._session_key = correlation_key(self._announcement())
        self._metrics_server: Optional[MetricsHttpServer] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def keyring(self):
        """SU/TTP key material for out-of-band distribution to clients."""
        return self._keyring

    @property
    def scale(self) -> BidScale:
        return self._scale

    @property
    def scheme(self):
        """The privacy scheme this server runs (from ``config.scheme``)."""
        return self._scheme

    @property
    def ttp_service(self) -> TtpService:
        return self._ttp_service

    @property
    def address(self) -> str:
        return self._transport.address

    @property
    def phase(self) -> RoundPhase:
        return self._phase

    @property
    def n_connected(self) -> int:
        return len(self._clients)

    @property
    def roster(self) -> Tuple[int, ...]:
        """Currently connected SU ids, sorted (the next round's roster)."""
        return tuple(sorted(self._clients))

    @property
    def session_key(self) -> str:
        """The trace correlation key derived from the announcement."""
        return self._session_key

    @property
    def metrics_address(self) -> Optional[str]:
        """``host:port`` of the scrape endpoint, or ``None`` when disabled."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.address

    async def start(self) -> None:
        """Bring the TTP service online (if owned) and start listening."""
        tr = trace.get_active()
        if tr is not None:
            tr.set_correlation(session=self._session_key, role="server")
        self._ttp_service.set_correlation(self._session_key)
        if self._owns_ttp_service:
            await self._ttp_service.start()
        await self._transport.listen(self._handle_connection)
        if self._config.metrics_port is not None:
            self._metrics_server = MetricsHttpServer(
                self._metrics_snapshot,
                host=self._config.metrics_host,
                port=self._config.metrics_port,
            )
            await self._metrics_server.start()

    async def stop(self) -> None:
        """Say goodbye, close every connection and the transport."""
        for state in list(self._clients.values()):
            with contextlib.suppress(TransportClosed, ConnectionError):
                await self._send(state, FrameType.BYE, pack_json({"rounds": self._round + 1}))
            state.conn.close()
        self._clients.clear()
        await self._transport.close()
        if self._owns_ttp_service:
            await self._ttp_service.stop()
        if self._metrics_server is not None:
            await self._metrics_server.stop()
            self._metrics_server = None

    def _metrics_snapshot(self) -> Dict[str, object]:
        """What a scrape sees: the active registry plus runtime gauges.

        Evaluated per scrape between protocol await-points, so it observes
        a consistent registry without locks; the overlay gauges make the
        endpoint useful even when nothing else is collecting.
        """
        registry = obs.get_active()
        snapshot: Dict[str, object] = (
            {"counters": {}, "timers": {}, "totals": {}, "histograms": {}, "gauges": {}}
            if registry is None
            else registry.snapshot()
        )
        gauges = dict(snapshot.get("gauges") or {})  # type: ignore[arg-type]
        gauges["net.server.connected_clients"] = float(len(self._clients))
        gauges["net.server.rounds_started"] = float(self._round + 1)
        snapshot["gauges"] = gauges
        return snapshot

    async def wait_for_clients(self, n: int, *, timeout: float) -> None:
        """Block until ``n`` SUs are registered (or raise on timeout)."""

        async def _waiter() -> None:
            while len(self._clients) < n:
                self._client_arrived.clear()
                await self._client_arrived.wait()

        await asyncio.wait_for(_waiter(), timeout)

    async def wait_for_roster(
        self, expected: Sequence[int], *, timeout: float
    ) -> None:
        """Block until the connected set is *exactly* ``expected``.

        The epoch scheduler's membership barrier: joins must have arrived
        **and** leavers must have disconnected before the next round
        snapshots its roster — a lingering departed SU would break the
        dense-id equivalence contract.
        """
        want = set(expected)

        async def _waiter() -> None:
            while set(self._clients) != want:
                self._roster_changed.clear()
                await self._roster_changed.wait()

        await asyncio.wait_for(_waiter(), timeout)

    def redistribute_keys(self, keyring) -> None:
        """Adopt a new key ring: fresh TTP, same scale, same transport.

        The epoch service's key (re)distribution on membership change
        (paper section IV: the TTP hands the ring to the bidders out of
        band).  Constructing the :class:`TrustedThirdParty` registers the
        new key epoch with the mask cache — selective invalidation keeps
        stationary SUs' entries warm.  Must be called between rounds
        (phase IDLE) with an empty charge backlog.
        """
        if self._phase is not RoundPhase.IDLE:
            raise RuntimeError("cannot rekey mid-round")
        ttp = TrustedThirdParty(keyring, self._scale)
        self._keyring = keyring
        self._ttp_service.rekey(ttp)
        obs.count("service.rekeys")

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, conn: Connection) -> None:
        state: Optional[_ClientState] = None
        try:
            ftype, payload = await asyncio.wait_for(
                self._read(conn), self._config.join_deadline
            )
            if ftype is not FrameType.HELLO:
                await self._send_raw(conn, FrameType.ERROR, ERR_UNEXPECTED,
                                     f"expected HELLO, got {ftype}")
                return
            hello = unpack_json(payload)
            su = hello.get("su")
            if not isinstance(su, int) or not 0 <= su < self._config.n_users:
                await self._send_raw(conn, FrameType.ERROR, ERR_BAD_HELLO,
                                     f"su {su!r} outside [0, {self._config.n_users})")
                return
            if su in self._clients:
                await self._send_raw(conn, FrameType.ERROR, ERR_DUPLICATE_SU,
                                     f"su {su} already registered")
                return
            state = _ClientState(su=su, conn=conn)
            self._clients[su] = state
            self._client_arrived.set()
            self._roster_changed.set()
            obs.count("net.clients_joined")
            await self._send(state, FrameType.WELCOME, pack_json(self._announcement()))
            while True:
                ftype, payload = await self._read(conn)
                await self._dispatch(state, ftype, payload)
        except _CloseConnection:
            pass
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
            # Peer vanished (possibly mid-frame).  Drop it; an in-flight
            # collect phase re-checks completion so the round is not
            # poisoned by a dead straggler.
            obs.count("net.connections_dropped")
        except CodecError as exc:
            obs.count("net.malformed_frames")
            with contextlib.suppress(TransportClosed, ConnectionError):
                await self._send_raw(conn, FrameType.ERROR, ERR_MALFORMED, str(exc))
        finally:
            if state is not None and self._clients.get(state.su) is state:
                del self._clients[state.su]
                self._roster_changed.set()
                self._discard_pending(state.su)
                self._maybe_phase_done()
            conn.close()

    def _announcement(self) -> Dict[str, object]:
        """The public auction announcement (what WELCOME carries).

        The default scheme contributes no extra key, keeping the default
        announcement — and the correlation key derived from it — identical
        to the pre-scheme protocol; other schemes add ``"scheme"`` so the
        client selects the matching codecs.
        """
        cfg = self._config
        return {
            "n_users": cfg.n_users,
            "n_channels": cfg.n_channels,
            "bmax": cfg.bmax,
            "two_lambda": cfg.two_lambda,
            "grid_rows": cfg.grid.rows,
            "grid_cols": cfg.grid.cols,
            **self._scheme.announcement_fields(),
        }

    async def _read(self, conn: Connection) -> Tuple[FrameType, bytes]:
        ftype, payload = await read_frame(
            conn, strict=True, max_frame_bytes=self._config.max_frame_bytes
        )
        self.wire.frames_in += 1
        self.wire.bytes_in += FRAME_HEADER_BYTES + len(payload)
        obs.count("net.frames_received")
        return ftype, payload

    async def _send(self, state: _ClientState, ftype: FrameType, payload: bytes) -> None:
        async with state.lock:
            n = await write_frame(state.conn, ftype, payload)
        self.wire.frames_out += 1
        self.wire.bytes_out += n
        obs.count("net.frames_sent")

    async def _send_raw(
        self, conn: Connection, ftype: FrameType, code: str, detail: str
    ) -> None:
        n = await write_frame(conn, ftype, pack_json({"code": code, "detail": detail}))
        self.wire.frames_out += 1
        self.wire.bytes_out += n
        obs.count("net.frames_sent")

    async def _send_error(self, state: _ClientState, code: str, detail: str) -> None:
        with contextlib.suppress(TransportClosed, ConnectionError):
            await self._send(
                state, FrameType.ERROR, pack_json({"code": code, "detail": detail})
            )

    async def _dispatch(
        self, state: _ClientState, ftype: FrameType, payload: bytes
    ) -> None:
        if ftype is FrameType.LOCATION:
            await self._on_submission(state, payload, kind="location")
        elif ftype is FrameType.BIDS:
            await self._on_submission(state, payload, kind="bids")
        else:
            await self._send_error(
                state, ERR_UNEXPECTED, f"client may not send {ftype.name}"
            )
            raise _CloseConnection

    async def _on_submission(
        self, state: _ClientState, payload: bytes, *, kind: str
    ) -> None:
        wanted = (
            RoundPhase.COLLECT_LOCATIONS if kind == "location" else RoundPhase.COLLECT_BIDS
        )
        store = self._locations if kind == "location" else self._bids
        if self._phase is not wanted or state.su not in self._expected:
            # A straggler past the deadline (or a submission outside any
            # round): answer with a clean protocol error, keep the
            # connection — the SU can rejoin the next round.
            obs.count("net.late_frames")
            await self._send_error(
                state, ERR_LATE,
                f"{kind} submission outside the {wanted.value} phase",
            )
            return
        # Malformed payloads raise CodecError and are handled (error frame +
        # connection close) by the connection handler.  The scheme's strict
        # decoders also reject another scheme's payloads (distinct tags).
        if kind == "location":
            sub: object = self._scheme.decode_location(payload)
        else:
            sub = self._scheme.decode_bids(payload)
        if sub.user_id != state.su:  # type: ignore[attr-defined]
            await self._send_error(
                state, ERR_WRONG_USER,
                f"submission claims su {sub.user_id}, connection is su {state.su}",  # type: ignore[attr-defined]
            )
            raise _CloseConnection
        if kind == "bids" and sub.n_channels != self._config.n_channels:  # type: ignore[attr-defined]
            await self._send_error(
                state, ERR_BAD_SUBMISSION,
                f"{sub.n_channels} channels, auction has {self._config.n_channels}",  # type: ignore[attr-defined]
            )
            raise _CloseConnection
        store[state.su] = sub  # type: ignore[assignment]
        self._maybe_phase_done()

    def _discard_pending(self, su: int) -> None:
        """A dead connection's half-round submissions must not reach the
        allocation: the intersection rule (location AND bids) handles the
        cross-phase case; same-phase partials are dropped here."""
        if self._phase is RoundPhase.COLLECT_LOCATIONS:
            self._locations.pop(su, None)
        elif self._phase is RoundPhase.COLLECT_BIDS:
            self._bids.pop(su, None)

    def _maybe_phase_done(self) -> None:
        if self._phase is RoundPhase.COLLECT_LOCATIONS:
            store = self._locations
        elif self._phase is RoundPhase.COLLECT_BIDS:
            store = self._bids
        else:
            return
        still_possible = {
            su for su in self._expected if su in self._clients or su in store
        }
        if still_possible <= set(store):
            self._phase_done.set()

    # -- the round state machine -------------------------------------------

    async def run_round(self, entropy: str) -> NetRoundReport:
        """Drive one auction round over the connected SUs.

        The phases themselves are the shared round core
        (:data:`repro.lppa.round.PHASE_STEPS` with the crypto backend);
        this method contributes the roster snapshot, the round counter and
        the abort protocol, and :class:`_NetRoundDriver` the transport
        interaction points.
        """
        if self._phase is not RoundPhase.IDLE:
            raise RuntimeError(f"round already in progress (phase {self._phase})")
        cfg = self._config
        roster = tuple(sorted(self._clients))
        if not roster:
            raise RoundAborted("no connected SUs")
        self._round += 1
        round_index = self._round
        self._locations = {}
        self._bids = {}
        t0 = monotonic()

        tr = trace.get_active()
        driver = _NetRoundDriver(self, round_index, entropy, roster)
        state = RoundState(
            backend=self._scheme.backend,
            driver=driver,
            n_users=len(roster),
            n_channels=cfg.n_channels,
            two_lambda=cfg.two_lambda,
            bmax=cfg.bmax,
            rd=cfg.rd,
            cr=cfg.cr,
            seed=cfg.seed,
            grid=cfg.grid,
            alloc_rng=alloc_rng(entropy),
            # TTP setup happened once at construction; prefilling the
            # material makes the crypto backend's setup step a no-op.
            keyring=self._keyring,
            scale=self._scale,
            tr=tr,
        )
        try:
            with obs.timer("net.round"):
                await execute_round_async(state)
        except RoundAborted:
            await self._broadcast(
                roster, FrameType.ERROR,
                pack_json({"code": ERR_ROUND_ABORTED,
                           "detail": "not enough submissions survived the deadlines"}),
            )
            obs.count("net.rounds_aborted")
            if tr is not None:
                tr.round_end(aborted=True)
            raise
        finally:
            self._phase = RoundPhase.IDLE
            self._expected = set()

        latency = monotonic() - t0
        obs.observe("net.round.latency", latency)
        return NetRoundReport(
            round_index=round_index,
            result=state.result,
            participants=driver.participants,
            stragglers=tuple(su for su in roster if su not in driver.participants),
            latency_s=latency,
        )

    def _dense_locations(self, sus: Sequence[int]) -> List[Any]:
        return [
            dataclasses.replace(self._locations[su], user_id=i)
            for i, su in enumerate(sus)
        ]

    def _begin_collect(self, phase: RoundPhase, expected: Sequence[int]) -> None:
        self._phase = phase
        self._expected = set(expected)
        self._phase_done.clear()

    async def _collect(self, deadline: float) -> None:
        self._maybe_phase_done()
        try:
            await asyncio.wait_for(self._phase_done.wait(), deadline)
        except asyncio.TimeoutError:
            obs.count("net.phase_deadlines_expired")

    async def _broadcast(
        self, sus: Sequence[int], ftype: FrameType, payload: bytes
    ) -> None:
        async def _one(su: int) -> None:
            state = self._clients.get(su)
            if state is None:
                return
            with contextlib.suppress(TransportClosed, ConnectionError):
                await self._send(state, ftype, payload)

        await asyncio.gather(*(_one(su) for su in sus))

    async def _broadcast_result(
        self,
        round_index: int,
        participants: Tuple[int, ...],
        result: LppaResult,
    ) -> None:
        outcome = result.outcome
        document = {
            "round": round_index,
            "participants": list(participants),
            "wins": [
                {
                    "su": participants[w.bidder],
                    "channel": w.channel,
                    "charge": w.charge,
                    "valid": w.valid,
                }
                for w in outcome.wins
            ],
            "revenue": outcome.sum_of_winning_bids(),
            "location_bytes": result.location_bytes,
            "bid_bytes": result.bid_bytes,
            "masked_set_bytes": result.masked_set_bytes,
            "framed_bytes": result.framed_bytes,
        }
        await self._broadcast(participants, FrameType.RESULT, pack_json(document))


class _NetRoundDriver(RoundDriver):
    """One round's transport-facing hooks, bound to a server and roster.

    Unlike the stateless in-process driver singleton, a fresh instance is
    created per round: it carries the round index, the entropy label, the
    roster snapshot and the surviving-participant sets the report needs.
    """

    name = "network"

    def __init__(
        self,
        server: AuctioneerServer,
        round_index: int,
        entropy: str,
        roster: Tuple[int, ...],
    ) -> None:
        self._server = server
        self._round_index = round_index
        self._entropy = entropy
        self._roster = roster
        self._location_sus: Tuple[int, ...] = ()
        self.participants: Tuple[int, ...] = ()

    def enter_phase(self, state: RoundState, step: PhaseStep) -> None:
        # The collect phases transition inside collect_* (via
        # _begin_collect, which also arms the expected set); the two
        # compute phases transition here so late frames get ERR_LATE.
        if step.key == "psd_allocation":
            self._server._phase = RoundPhase.ALLOCATE
        elif step.key == "ttp_charging":
            self._server._phase = RoundPhase.CHARGE

    async def collect_locations(self, state: RoundState) -> None:
        srv = self._server
        srv._begin_collect(RoundPhase.COLLECT_LOCATIONS, self._roster)
        await srv._broadcast(
            self._roster, FrameType.ROUND_BEGIN,
            pack_json({"round": self._round_index, "entropy": self._entropy}),
        )
        await srv._collect(srv._config.location_deadline)
        location_sus = tuple(sorted(srv._locations))
        if not location_sus:
            raise RoundAborted("no location submissions")
        self._location_sus = location_sus
        state.location_subs = srv._dense_locations(location_sus)

    async def collect_bids(self, state: RoundState) -> None:
        srv = self._server
        srv._begin_collect(RoundPhase.COLLECT_BIDS, self._location_sus)
        await srv._broadcast(
            self._location_sus, FrameType.BID_REQUEST,
            pack_json({"round": self._round_index}),
        )
        await srv._collect(srv._config.bid_deadline)
        participants = tuple(
            sorted(su for su in srv._bids if su in srv._locations)
        )
        if not participants:
            raise RoundAborted("no bid submissions")
        if participants != self._location_sus:
            # Stragglers died between phases; hand the core the surviving
            # roster's locations and let it re-ingest (straggler repair).
            state.location_subs = srv._dense_locations(participants)
            state.relocate = True
        self.participants = participants
        state.bid_subs = [
            dataclasses.replace(srv._bids[su], user_id=i)
            for i, su in enumerate(participants)
        ]

    async def decide_charges(self, state: RoundState, material: List) -> List:
        # Through the periodically-online TTP service (windowed batching).
        return await self._server._ttp_service.charge_batch(material)

    async def publish(self, state: RoundState) -> None:
        await self._server._broadcast_result(
            self._round_index, self.participants, state.result
        )
