"""The wire frame envelope of the network runtime.

:mod:`repro.lppa.codec` serializes protocol *messages*; a stream transport
additionally needs to know where one message ends and the next begins, what
kind of message is coming, and which protocol revision produced it.  This
module wraps every message in a fixed six-byte envelope::

    | version: u8 | frame_type: u8 | payload_len: u32 |  payload ...

All integers big-endian.  The payload of :data:`FrameType.LOCATION` /
:data:`FrameType.BIDS` frames is exactly the corresponding codec encoding
(``encode_location`` / ``encode_bids``); control frames (HELLO, WELCOME,
ROUND_BEGIN, ...) carry a compact JSON object.

Malformed envelopes raise :class:`~repro.lppa.codec.CodecError`, the same
error class the message codec uses, so endpoint code has a single
"reject this peer's bytes" signal.  :func:`decode_frame` has a ``strict``
mode — the server's mode — that additionally rejects unknown frame types
and trailing garbage after the framed payload.
"""

from __future__ import annotations

import enum
import json
import struct
from typing import Any, Dict, Tuple

from repro.lppa.codec import CodecError

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameType",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "pack_json",
    "unpack_json",
]

#: Envelope revision; bump on layout changes.  A mismatch is rejected on
#: read so old clients fail fast instead of misparsing.
PROTOCOL_VERSION = 1

#: ``version: u8 | frame_type: u8 | payload_len: u32``.
FRAME_HEADER_BYTES = 6

#: Per-connection backpressure guard: a peer announcing a payload larger
#: than this is rejected before a single payload byte is read.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">BBI")


class FrameType(enum.IntEnum):
    """What a frame carries; the u8 on the wire."""

    HELLO = 1        #: client -> server, JSON ``{"su": id}``
    WELCOME = 2      #: server -> client, JSON auction announcement
    ROUND_BEGIN = 3  #: server -> client, JSON ``{"round": r, "entropy": s}``
    LOCATION = 4     #: client -> server, ``encode_location`` payload
    BID_REQUEST = 5  #: server -> client, JSON ``{"round": r}``
    BIDS = 6         #: client -> server, ``encode_bids`` payload
    RESULT = 7       #: server -> client, JSON round outcome
    ERROR = 8        #: either way, JSON ``{"code": c, "detail": d}``
    BYE = 9          #: server -> client, JSON ``{"rounds": n}``


def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """Wrap ``payload`` in the versioned envelope."""
    if not 0 <= int(frame_type) <= 0xFF:
        raise CodecError(f"frame type {frame_type!r} outside u8 range")
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _HEADER.pack(PROTOCOL_VERSION, int(frame_type), len(payload)) + payload


def decode_frame(
    data: bytes,
    *,
    strict: bool = False,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Tuple[int, bytes]:
    """Parse one framed message out of ``data``; returns ``(type, payload)``.

    Always rejected: truncated header or payload, wrong protocol version,
    oversized payload announcements.  ``strict`` (the server's mode)
    additionally rejects unknown frame types and any trailing bytes after
    the framed payload — a stream endpoint reads exact frames, so trailing
    garbage means the peer's framing is broken.
    """
    if len(data) < FRAME_HEADER_BYTES:
        raise CodecError("truncated frame header")
    version, frame_type, length = _HEADER.unpack_from(data)
    if version != PROTOCOL_VERSION:
        raise CodecError(
            f"protocol version {version} (this runtime speaks {PROTOCOL_VERSION})"
        )
    if length > max_frame_bytes:
        raise CodecError(
            f"frame announces {length} payload bytes, over the "
            f"{max_frame_bytes}-byte limit"
        )
    end = FRAME_HEADER_BYTES + length
    if len(data) < end:
        raise CodecError("truncated frame payload")
    if strict:
        if len(data) != end:
            raise CodecError(
                f"{len(data) - end} trailing bytes after the framed payload"
            )
        try:
            frame_type = FrameType(frame_type)
        except ValueError:
            raise CodecError(f"unknown frame type {frame_type}") from None
    return frame_type, data[FRAME_HEADER_BYTES:end]


async def read_frame(
    conn, *, strict: bool = False, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Tuple[int, bytes]:
    """Read exactly one frame off a connection; returns ``(type, payload)``.

    Raises :class:`CodecError` on envelope violations (bad version,
    oversized payload) and lets the connection's EOF/reset exceptions
    propagate — a peer vanishing mid-frame is a transport event, not a
    codec one.  The payload length is validated *before* payload bytes are
    read, so a hostile length announcement never allocates the buffer.

    ``strict`` routes the reassembled bytes through :func:`decode_frame`'s
    strict mode, so unknown frame types are rejected and the returned type
    is a :class:`FrameType` member.
    """
    header = await conn.readexactly(FRAME_HEADER_BYTES)
    version, frame_type, length = _HEADER.unpack(header)
    if version != PROTOCOL_VERSION:
        raise CodecError(
            f"protocol version {version} (this runtime speaks {PROTOCOL_VERSION})"
        )
    if length > max_frame_bytes:
        raise CodecError(
            f"frame announces {length} payload bytes, over the "
            f"{max_frame_bytes}-byte limit"
        )
    payload = await conn.readexactly(length) if length else b""
    if strict:
        return decode_frame(
            header + payload, strict=True, max_frame_bytes=max_frame_bytes
        )
    return frame_type, payload


async def write_frame(conn, frame_type: int, payload: bytes = b"") -> int:
    """Frame ``payload`` and write it; returns the bytes put on the wire."""
    data = encode_frame(frame_type, payload)
    await conn.write(data)
    return len(data)


def pack_json(obj: Dict[str, Any]) -> bytes:
    """Compact JSON payload for control frames."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def unpack_json(payload: bytes) -> Dict[str, Any]:
    """Parse a control-frame payload; :class:`CodecError` on malformed JSON."""
    try:
        obj = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed control payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise CodecError("control payload must be a JSON object")
    return obj
