"""The secondary-user endpoint of the network runtime.

An :class:`SUClient` owns exactly what the paper gives an SU: its identity,
its private cell and bids (a :class:`~repro.auction.bidders.SecondaryUser`),
and the key material the TTP distributed out of band.  Everything it sends
is the masked material of the protocol — the server never sees a plaintext
cell or bid value.

Determinism contract: the round's entropy label arrives in the ROUND_BEGIN
frame and the client draws its masking randomness from
:func:`repro.lppa.entropy.bidder_rng` — the exact per-bidder stream
:func:`repro.lppa.entropy.derive_round_rngs` hands the in-process session.
That, plus dense ids under full participation, is why a networked round is
bit-identical to :func:`~repro.lppa.session.run_lppa_auction`.

Fault handling: connects retry with exponential backoff and jitter
(:class:`RetryPolicy`), every read is bounded by ``frame_timeout``, and an
ERROR frame from the server surfaces as :class:`ProtocolError` with the
server's error code — never a hang.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.obs import trace
from repro.obs.trace import correlation_key
from repro.auction.bidders import SecondaryUser
from repro.crypto.keys import KeyRing
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale
from repro.lppa.policies import KeepZeroPolicy, ZeroDisguisePolicy
from repro.lppa.schemes.base import PrivacyScheme
from repro.lppa.schemes.registry import DEFAULT_SCHEME, get_scheme
from repro.net.frames import (
    FRAME_HEADER_BYTES,
    FrameType,
    pack_json,
    read_frame,
    unpack_json,
    write_frame,
)
from repro.lppa.entropy import bidder_rng
from repro.net.transport import Connection, Transport, TransportClosed
from repro.obs.clock import monotonic

__all__ = [
    "RetryPolicy",
    "ProtocolError",
    "ServerGoodbye",
    "ClientRound",
    "SUClient",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for connection attempts."""

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay <= 0 or self.multiplier < 1 or self.max_delay <= 0:
            raise ValueError("backoff parameters must be positive (multiplier >= 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to sleep after failed attempt number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter:
            raw *= 1.0 + self.jitter * rng.random()
        return raw


class ProtocolError(RuntimeError):
    """The server answered with an ERROR frame."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class ServerGoodbye(Exception):
    """The server sent BYE: no more rounds are coming."""


@dataclass(frozen=True)
class ClientRound:
    """One round as this SU experienced it."""

    round_index: int
    result: Dict[str, Any]
    latency_s: float


class SUClient:
    """One SU: connects, follows the round state machine, records latency."""

    def __init__(
        self,
        su_id: int,
        user: SecondaryUser,
        keyring: KeyRing,
        scale: BidScale,
        grid: GridSpec,
        two_lambda: int,
        transport: Transport,
        *,
        policy: Optional[ZeroDisguisePolicy] = None,
        retry: Optional[RetryPolicy] = None,
        frame_timeout: float = 30.0,
        recorder: Optional[trace.TraceRecorder] = None,
    ) -> None:
        self._su_id = su_id
        self._user = user
        self._keyring = keyring
        self._scale = scale
        self._grid = grid
        self._two_lambda = two_lambda
        self._transport = transport
        self._policy = policy if policy is not None else KeepZeroPolicy()
        self._retry = retry if retry is not None else RetryPolicy()
        self._frame_timeout = frame_timeout
        # A *private* per-client flight recorder: the client never touches
        # the process-wide recorder (which a self-hosted server may own),
        # so enabling client traces cannot perturb the server's stream.
        self._recorder = recorder
        self._conn: Optional[Connection] = None
        self._announcement: Optional[Dict[str, Any]] = None
        self._session_key: Optional[str] = None
        # Resolved from the WELCOME announcement at connect time: the server
        # names its scheme there (absence means the default, PPBS).
        self._scheme: PrivacyScheme = get_scheme(DEFAULT_SCHEME)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.connect_attempts = 0

    @property
    def su_id(self) -> int:
        return self._su_id

    @property
    def keyring(self) -> KeyRing:
        return self._keyring

    def rekey(self, keyring: KeyRing) -> None:
        """Adopt a redistributed key ring (out-of-band, as the paper's TTP
        does on join/leave).  Takes effect from the next round's masking."""
        self._keyring = keyring

    @property
    def announcement(self) -> Optional[Dict[str, Any]]:
        """The WELCOME document, once connected."""
        return self._announcement

    @property
    def scheme(self) -> PrivacyScheme:
        """The privacy scheme announced by the server (PPBS until connected)."""
        return self._scheme

    @property
    def session_key(self) -> Optional[str]:
        """Correlation key derived from the WELCOME announcement."""
        return self._session_key

    @property
    def recorder(self) -> Optional[trace.TraceRecorder]:
        """This client's private flight recorder, if one was attached."""
        return self._recorder

    # -- connection management ----------------------------------------------

    async def connect(self) -> Dict[str, Any]:
        """Dial the server (with backoff) and register; returns the
        auction announcement from the WELCOME frame."""
        backoff_rng = random.Random(f"su-backoff:{self._su_id}")
        last_error: Optional[BaseException] = None
        for attempt in range(self._retry.max_attempts):
            self.connect_attempts += 1
            try:
                conn = await self._transport.connect()
                try:
                    await self._write(conn, FrameType.HELLO,
                                      pack_json({"su": self._su_id}))
                    ftype, payload = await self._read(conn)
                except BaseException:
                    conn.close()
                    raise
                if ftype is FrameType.ERROR:
                    doc = unpack_json(payload)
                    conn.close()
                    raise ProtocolError(
                        str(doc.get("code", "?")), str(doc.get("detail", ""))
                    )
                if ftype is not FrameType.WELCOME:
                    conn.close()
                    raise ProtocolError(
                        "bad-welcome", f"expected WELCOME, got {ftype}"
                    )
                self._conn = conn
                self._announcement = unpack_json(payload)
                self._scheme = get_scheme(
                    str(self._announcement.get("scheme", DEFAULT_SCHEME))
                )
                # Same bytes, same hash: the server derived this key from
                # the identical announcement document before sending it.
                self._session_key = correlation_key(self._announcement)
                if self._recorder is not None:
                    self._recorder.set_correlation(
                        session=self._session_key, role=f"su:{self._su_id}"
                    )
                    self._recorder.instant(
                        "client_connected", vis="su",
                        attempts=self.connect_attempts,
                    )
                return self._announcement
            except ProtocolError:
                raise  # the server answered; retrying won't change its mind
            except (
                TransportClosed,
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                last_error = exc
                obs.count("net.client.connect_retries")
                if attempt + 1 < self._retry.max_attempts:
                    await asyncio.sleep(self._retry.delay(attempt, backoff_rng))
        raise TransportClosed(
            f"su {self._su_id}: server unreachable after "
            f"{self._retry.max_attempts} attempts"
        ) from last_error

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- the round, from the SU's side --------------------------------------

    async def run_round(self) -> ClientRound:
        """Participate in the next round; blocks until RESULT (or raises
        :class:`ProtocolError` / :class:`ServerGoodbye`)."""
        conn = self._require_conn()
        round_index, entropy = await self._await_round_begin(conn)
        t0 = monotonic()
        # The per-bidder stream of the derive_round_rngs contract: masking
        # randomness is a function of (round entropy, this SU's id) only.
        rng = bidder_rng(entropy, self._su_id)

        location = self._scheme.make_location(
            self._su_id, self._user.cell, self._keyring,
            self._grid, self._two_lambda,
        )
        t_sent = monotonic()
        await self._write(
            conn, FrameType.LOCATION, self._scheme.encode_location(location)
        )

        ftype, payload = await self._read(conn)
        obs.observe("net.client.frame_rtt", monotonic() - t_sent)
        if ftype is not FrameType.BID_REQUEST:
            self._unexpected(ftype, payload, expected="BID_REQUEST")
        bids, _disclosure = self._scheme.make_bids(
            self._su_id, self._user.bids, self._keyring, self._scale, rng,
            policy=self._policy,
        )
        t_sent = monotonic()
        await self._write(conn, FrameType.BIDS, self._scheme.encode_bids(bids))

        ftype, payload = await self._read(conn)
        obs.observe("net.client.frame_rtt", monotonic() - t_sent)
        if ftype is not FrameType.RESULT:
            self._unexpected(ftype, payload, expected="RESULT")
        result = unpack_json(payload)
        latency = monotonic() - t0
        obs.count("net.client.rounds")
        obs.observe("net.client.round_latency", latency)
        if self._recorder is not None:
            with self._recorder.corr_scope(round_=round_index):
                self._recorder.instant(
                    "client_round_complete", vis="su",
                    wins=len(result.get("wins", ())),
                )
        return ClientRound(
            round_index=round_index, result=result, latency_s=latency
        )

    async def run(self, n_rounds: int) -> List[ClientRound]:
        """Connect if needed, play ``n_rounds`` rounds, close."""
        if self._conn is None:
            await self.connect()
        rounds: List[ClientRound] = []
        try:
            for _ in range(n_rounds):
                rounds.append(await self.run_round())
        except ServerGoodbye:
            pass
        finally:
            self.close()
        return rounds

    async def _await_round_begin(self, conn: Connection) -> Tuple[int, str]:
        ftype, payload = await self._read(conn)
        if ftype is not FrameType.ROUND_BEGIN:
            self._unexpected(ftype, payload, expected="ROUND_BEGIN")
        doc = unpack_json(payload)
        return int(doc["round"]), str(doc["entropy"])

    def _unexpected(self, ftype: FrameType, payload: bytes, *, expected: str):
        if ftype is FrameType.BYE:
            raise ServerGoodbye
        if ftype is FrameType.ERROR:
            doc = unpack_json(payload)
            raise ProtocolError(
                str(doc.get("code", "?")), str(doc.get("detail", ""))
            )
        raise ProtocolError("unexpected-frame", f"expected {expected}, got {ftype}")

    # -- framed I/O with timeouts and byte accounting ------------------------

    def _require_conn(self) -> Connection:
        if self._conn is None:
            raise RuntimeError(f"su {self._su_id} is not connected")
        return self._conn

    async def _read(self, conn: Connection) -> Tuple[FrameType, bytes]:
        ftype, payload = await asyncio.wait_for(
            read_frame(conn, strict=True), self._frame_timeout
        )
        self.bytes_received += FRAME_HEADER_BYTES + len(payload)
        return ftype, payload

    async def _write(self, conn: Connection, ftype: FrameType, payload: bytes) -> None:
        self.bytes_sent += await write_frame(conn, ftype, payload)
