"""The periodically-online TTP as an asyncio service.

Section V.C.2 of the paper ("Reducing the Online Time of TTP") argues the
TTP should come online in windows and drain a queue of charge requests.
:mod:`repro.lppa.batching` models that trade offline with unitless time;
this module runs it for real: the auctioneer server deposits winner
batches with :meth:`TtpService.charge_batch` and a background task drains
the queue on :class:`~repro.lppa.batching.TtpSchedule` windows (scaled to
wall seconds by ``time_scale``), at most ``schedule.capacity`` requests
per window.  Without a schedule the service is *always on* and drains as
work arrives — the mode the deterministic tests and the differential
equivalence runs use, because decision values are independent of window
packing either way (each charge is verified in isolation).

Request order is FIFO across batches and preserved within a batch, so the
decisions line up with :meth:`repro.lppa.auctioneer.Auctioneer.charge_material`.
"""

from __future__ import annotations

import asyncio
import collections
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import trace
from repro.lppa.batching import TtpSchedule
from repro.lppa.messages import MaskedBid
from repro.lppa.ttp import ChargeDecision, TrustedThirdParty

__all__ = ["TtpService", "TtpServiceStats"]


@dataclass(frozen=True)
class TtpServiceStats:
    """Duty-cycle accounting over the service's lifetime."""

    requests_served: int
    windows_total: int
    windows_used: int

    @property
    def duty_cycle(self) -> float:
        """Fraction of online windows that actually processed work."""
        return self.windows_used / self.windows_total if self.windows_total else 0.0


class _Batch:
    """One deposited winner list and the future its caller awaits."""

    __slots__ = ("requests", "decisions", "remaining", "future")

    def __init__(self, requests: Sequence[Tuple[int, MaskedBid]]) -> None:
        self.requests = list(requests)
        self.decisions: List[Optional[ChargeDecision]] = [None] * len(requests)
        self.remaining = len(requests)
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()


class TtpService:
    """Drains the charge queue on the TTP's online windows."""

    def __init__(
        self,
        ttp: TrustedThirdParty,
        schedule: Optional[TtpSchedule] = None,
        *,
        time_scale: float = 0.01,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._ttp = ttp
        self._schedule = schedule
        self._time_scale = time_scale
        self._queue: Deque[Tuple[_Batch, int]] = collections.deque()
        self._work = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._stopping = False
        self._served = 0
        self._windows_total = 0
        self._windows_used = 0
        self._session: Optional[str] = None

    @property
    def ttp(self) -> TrustedThirdParty:
        return self._ttp

    def rekey(self, ttp: TrustedThirdParty) -> None:
        """Swap in a re-keyed TTP (epoch-service key redistribution).

        Only legal with an empty backlog: queued charge material was
        sealed under the previous ``gc`` and would decrypt to garbage
        under the new one.  The epoch scheduler rekeys between rounds,
        after the previous round's charges resolved.
        """
        if self._queue:
            raise RuntimeError(
                f"cannot rekey with {len(self._queue)} queued charge requests"
            )
        self._ttp = ttp

    def set_correlation(self, session: Optional[str]) -> None:
        """Stamp subsequent ``ttp_window`` trace events with ``session``.

        The auctioneer server passes its announcement-derived correlation
        key here on :meth:`AuctioneerServer.start`, so the TTP's events
        join the same cross-process timeline without wire changes.
        """
        self._session = session

    def stats(self) -> TtpServiceStats:
        """Duty-cycle accounting so far (windows, requests served)."""
        return TtpServiceStats(
            requests_served=self._served,
            windows_total=self._windows_total,
            windows_used=self._windows_used,
        )

    async def start(self) -> None:
        """Come online: begin draining the queue on the configured windows."""
        if self._task is not None:
            raise RuntimeError("TTP service already started")
        self._stopping = False
        self._task = asyncio.ensure_future(self._drain_loop())

    async def stop(self) -> None:
        """Finish the backlog, then go offline."""
        if self._task is None:
            return
        self._stopping = True
        self._work.set()
        await self._task
        self._task = None

    async def charge_batch(
        self, requests: Sequence[Tuple[int, MaskedBid]]
    ) -> List[ChargeDecision]:
        """Deposit one winner list; resolves when every request is served."""
        if self._task is None:
            raise RuntimeError("TTP service is not running")
        if not requests:
            return []
        obs.count("net.ttp.batches")
        batch = _Batch(requests)
        for index in range(len(batch.requests)):
            self._queue.append((batch, index))
        self._work.set()
        return await batch.future

    # -- the online-window loop --------------------------------------------

    async def _drain_loop(self) -> None:
        while True:
            if self._stopping and not self._queue:
                return
            if self._schedule is None:
                await self._work.wait()
                self._work.clear()
                self._serve_window(capacity=None)
            else:
                await asyncio.sleep(self._schedule.period * self._time_scale)
                self._serve_window(capacity=self._schedule.capacity)

    def _serve_window(self, capacity: Optional[int]) -> None:
        """One online window: pop up to ``capacity`` requests and decide them."""
        self._windows_total += 1
        served = 0
        with obs.timer("net.ttp.window"):
            while self._queue and (capacity is None or served < capacity):
                batch, index = self._queue.popleft()
                channel, masked_bid = batch.requests[index]
                decision = self._ttp.process_charge(channel, masked_bid)
                batch.decisions[index] = decision
                batch.remaining -= 1
                served += 1
                if batch.remaining == 0 and not batch.future.done():
                    batch.future.set_result(list(batch.decisions))
        if served:
            self._windows_used += 1
            self._served += served
            obs.count("net.ttp.windows_used")
            tr = trace.get_active()
            if tr is not None:
                # The TTP shares the server's recorder and event loop; the
                # synchronous corr_scope re-labels just this event as the
                # TTP's without disturbing the server's defaults.
                with tr.corr_scope(session=self._session, role="ttp"):
                    tr.instant(
                        "ttp_window",
                        vis="ttp",
                        served=served,
                        backlog=len(self._queue),
                    )
        obs.count("net.ttp.windows")
        obs.set_gauge("net.ttp.backlog", float(len(self._queue)))
