"""Private Spectrum Distribution — the masked bid table (section V.A).

After PPBS the auctioneer holds, for every (bidder, channel), a masked
prefix family and tail cover.  :class:`MaskedBidTable` turns that pile into
the :class:`~repro.auction.table.BidTable` interface, so the greedy
Algorithm 3 in :mod:`repro.auction.allocation` runs on it unchanged.

"Find the maximum of a column" is implemented by first recovering each
channel's total *order* of bidders through pairwise membership tests
(``G(b_i) ∩ Q([b_j, emax]) != ∅  <=>  b_i >= b_j``) — an operation the
curious auctioneer can always perform, which is precisely why the paper's
attacker model (section VI.C) grants the adversary the ordered bid table.
The same ranking is therefore exposed via :meth:`MaskedBidTable.ranking`
as the attack surface for :mod:`repro.attacks.against_lppa`.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.auction.table import BidTable
from repro.lppa.messages import BidSubmission, MaskedBid
from repro.prefix.membership import is_member

__all__ = ["MaskedBidTable", "rank_by_ge", "rank_masked_column"]


def rank_by_ge(
    n_users: int, ge: Callable[[int, int], bool]
) -> List[List[int]]:
    """Total order of ``range(n_users)`` under ``ge``, as equivalence classes.

    ``ge(i, j)`` answers ``b_i >= b_j``; it must be a total preorder (every
    masked column is, up to the negligible filler-collision probability).
    This is *the* ranking algorithm — :meth:`MaskedBidTable.ranking` and the
    sharded per-channel ranking workers both call it, which is what makes a
    worker-computed ranking bit-identical to an in-table one: same sort,
    same comparison order, same class grouping.
    """

    def compare(i: int, j: int) -> int:
        i_ge_j = ge(i, j)
        j_ge_i = ge(j, i)
        if i_ge_j and j_ge_i:
            return 0
        if i_ge_j:
            return -1  # i sorts first (descending order)
        if j_ge_i:
            return 1
        raise AssertionError(
            "masked comparison is not total: filler-digest collision?"
        )

    order = sorted(range(n_users), key=functools.cmp_to_key(compare))
    classes: List[List[int]] = []
    for bidder in order:
        if classes and compare(classes[-1][0], bidder) == 0:
            classes[-1].append(bidder)
        else:
            classes.append([bidder])
    return classes


def rank_masked_column(column: Sequence[MaskedBid]) -> List[List[int]]:
    """Rank one channel's masked column standalone (no table required).

    Used by the sharded psd-allocation workers: a worker receives just the
    column, memoizes pairwise verdicts locally (mirroring the table's
    ``_ge_cache``) and returns the classes.  Digest-identical inputs give
    list-identical classes because :func:`rank_by_ge` is shared.
    """
    memo: Dict[Tuple[int, int], bool] = {}

    def ge(i: int, j: int) -> bool:
        key = (i, j)
        cached = memo.get(key)
        if cached is None:
            cached = is_member(column[i].family, column[j].tail)
            memo[key] = cached
        return cached

    return rank_by_ge(len(column), ge)


class MaskedBidTable(BidTable):
    """Algorithm 3's table ``T`` over HMAC-masked bids."""

    def __init__(self, submissions: Sequence[BidSubmission]) -> None:
        if not submissions:
            raise ValueError("bid table needs at least one submission")
        widths = {s.n_channels for s in submissions}
        if len(widths) != 1:
            raise ValueError("all submissions must cover the same channels")
        self._n_channels = widths.pop()
        for idx, sub in enumerate(submissions):
            if sub.user_id != idx:
                raise ValueError(
                    f"submissions must be dense: slot {idx} holds user {sub.user_id}"
                )
        self._n_users = len(submissions)
        # Live entries: per channel, the set of bidders still in the column.
        self._live: List[Set[int]] = [
            set(range(self._n_users)) for _ in range(self._n_channels)
        ]
        self._bids: List[List[MaskedBid]] = [
            [sub.channel_bids[ch] for sub in submissions]
            for ch in range(self._n_channels)
        ]
        self._rankings: List[Optional[List[List[int]]]] = [None] * self._n_channels
        # max_bidders cursor: index of the first ranking class that may
        # still contain a live bidder.  Entries are only ever removed, so a
        # fully-dead class stays dead and the cursor moves monotonically.
        self._cursors: List[int] = [0] * self._n_channels
        # Memoized pairwise verdicts: (channel, i, j) -> "b_i >= b_j".  The
        # masked sets are immutable for the round, so each ordered pair
        # needs at most one membership test; the equivalence-class pass in
        # ranking() re-asks O(N) comparisons the sort already made, and the
        # cache turns those into dict hits instead of repeated HMAC-set
        # intersections.
        self._ge_cache: Dict[Tuple[int, int, int], bool] = {}

    # BidTable interface --------------------------------------------------------

    @property
    def n_channels(self) -> int:
        return self._n_channels

    def has_entries(self) -> bool:
        return any(self._live)

    def channel_bidders(self, channel: int) -> Set[int]:
        self._check_channel(channel)
        return set(self._live[channel])

    def max_bidders(self, channel: int) -> List[int]:
        self._check_channel(channel)
        live = self._live[channel]
        if not live:
            raise ValueError(f"channel {channel} has no remaining bids")
        ranking = self.ranking(channel)
        cursor = self._cursors[channel]
        while cursor < len(ranking):
            remaining = [b for b in ranking[cursor] if b in live]
            if remaining:
                self._cursors[channel] = cursor
                return remaining
            cursor += 1
        raise AssertionError("ranking must cover every live bidder")

    def has_channel_entries(self, channel: int) -> bool:
        self._check_channel(channel)
        return bool(self._live[channel])

    def remove_row(self, bidder: int) -> None:
        self._check_bidder(bidder)
        for live in self._live:
            live.discard(bidder)

    def remove_entry(self, bidder: int, channel: int) -> None:
        self._check_bidder(bidder)
        self._check_channel(channel)
        self._live[channel].discard(bidder)

    # Masked-order machinery -----------------------------------------------------

    def masked_bid(self, bidder: int, channel: int) -> MaskedBid:
        """The submission material for one entry (used at charging time)."""
        self._check_bidder(bidder)
        self._check_channel(channel)
        return self._bids[channel][bidder]

    def bid_ge(self, i: int, j: int, channel: int) -> bool:
        """``b_i >= b_j`` on this channel, decided purely on masked sets.

        Memoized per ``(channel, i, j)``: the verdict is a pure function of
        the round's immutable submissions, so repeat queries (the ranking's
        equivalence-class pass, attack-layer probes) cost a dict lookup.
        """
        key = (channel, i, j)
        cached = self._ge_cache.get(key)
        if cached is None:
            column = self._bids[channel]
            cached = is_member(column[i].family, column[j].tail)
            self._ge_cache[key] = cached
        return cached

    def ranking(self, channel: int) -> List[List[int]]:
        """Total order of *all* bidders on a channel, best first.

        Returned as equivalence classes: bidders within a class submitted
        equal masked values (mutually >=).  Computed once per channel with
        O(N log N) masked comparisons and cached — deletions never change
        the underlying order.

        Micro-bench (40 bidders x 5 channels, one process, perf_counter):
        the pairwise memo in :meth:`bid_ge` drops ``rankings()`` from 2018
        membership tests / 4.3 ms to 1626 / 3.7 ms — the ~20% of
        comparisons the equivalence-class pass repeats after the sort.
        """
        self._check_channel(channel)
        cached = self._rankings[channel]
        if cached is not None:
            return cached
        classes = rank_by_ge(
            self._n_users, lambda i, j: self.bid_ge(i, j, channel)
        )
        self._rankings[channel] = classes
        return classes

    def rankings(self) -> List[List[List[int]]]:
        """All channels' rankings (the attacker's full view of the table)."""
        return [self.ranking(ch) for ch in range(self._n_channels)]

    def column(self, channel: int) -> List[MaskedBid]:
        """One channel's masked column in bidder order (sharding transport).

        The sharded psd phase ships columns to worker processes, which rank
        them with :func:`rank_masked_column` and hand the classes back via
        :meth:`set_rankings`.
        """
        self._check_channel(channel)
        return list(self._bids[channel])

    def set_rankings(self, rankings: Sequence[List[List[int]]]) -> None:
        """Install externally computed per-channel rankings.

        Accepts exactly what :meth:`rankings` would return — one class list
        per channel, each covering every bidder — and caches them so later
        :meth:`ranking`/:meth:`max_bidders` calls skip the membership-test
        sort.  Only rankings produced by :func:`rank_masked_column` over
        this table's own columns are bit-identical to the in-table sort;
        that contract is what the sharded-vs-serial differential tests pin.
        """
        if len(rankings) != self._n_channels:
            raise ValueError(
                f"{len(rankings)} rankings for {self._n_channels} channels"
            )
        for channel, classes in enumerate(rankings):
            covered = sorted(b for tie_class in classes for b in tie_class)
            if covered != list(range(self._n_users)):
                raise ValueError(
                    f"channel {channel} ranking must cover every bidder exactly once"
                )
            self._rankings[channel] = classes

    # Internals -------------------------------------------------------------------

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self._n_channels:
            raise IndexError(f"channel {channel} outside 0..{self._n_channels - 1}")

    def _check_bidder(self, bidder: int) -> None:
        if not 0 <= bidder < self._n_users:
            raise IndexError(f"bidder {bidder} outside 0..{self._n_users - 1}")
