"""Bloom-filter private location submission (the Bloom scheme, section IV.A
analogue).

Instead of prefix families, each SU submits

* a keyed **cell token** for its own cell, and
* a **Bloom filter** over the tokens of every in-grid cell inside its
  interference box ``[m-d, m+d] x [n-d, n+d]`` (``d = 2λ - 1``, clamped to
  the grid like the PPBS range cover),

both under the shared location key ``kb = derive_key(g0, "bloom/location")``.
The auctioneer declares a conflict between SUs *i* and *j* when *j*'s filter
contains *i*'s token — the same one-directional test the PPBS membership
check uses, exact for in-grid cells up to the filter's false-positive rate.

The filter is sized so that false positives are negligible at auction scale:
``n_bits`` is the next power of two above ``32 * (2d+1)^2`` (4096 bits for
the standard ``2λ = 6``), with ``k = 7`` hash positions sliced keylessly
from the 16-byte token (positions ``i`` use token bytes ``2i..2i+4``).  At
that sizing the per-query false-positive probability is ~8e-6, so the Bloom
conflict graph matches the plaintext graph on every realistic population —
which the differential tests assert against PPBS.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.auction.conflict import ConflictGraph
from repro.crypto.backend import hmac_digest_batch
from repro.crypto.keys import derive_key
from repro.geo.grid import Cell, GridSpec
from repro.lppa.codec import CodecError

__all__ = [
    "BLOOM_LOCATION_TAG",
    "BloomFilter",
    "BloomLocationSubmission",
    "bloom_params",
    "build_bloom_conflict_graph",
    "cell_tokens",
    "decode_location_bloom",
    "encode_location_bloom",
    "submit_location_bloom",
    "submit_locations_bloom",
]

#: Leading payload byte of Bloom location submissions (PPBS uses ``b"L"``).
BLOOM_LOCATION_TAG = b"l"

#: Derivation label of the shared location key under ``g0``.
LOCATION_KEY_LABEL = "bloom/location"

_CELL_DOMAIN = b"bloom/cell"
_TOKEN_BYTES = 16
_N_HASHES = 7

# Framing of the encoded payload: tag + token length byte + filter
# parameters (n_bits u32, n_hashes u8); user id and the token/filter bodies
# are protocol payload.
LOCATION_FRAMING = 1 + 1 + 4 + 1


def _next_pow2(value: int) -> int:
    return 1 << max(0, value - 1).bit_length()


def bloom_params(two_lambda: int) -> Tuple[int, int, int]:
    """``(d, n_bits, n_hashes)`` for one interference half-width.

    ``n_bits`` targets ~32 bits per inserted cell — with ``k = 7`` hashes
    that puts the false-positive rate around ``8e-6`` per membership query,
    far below anything a CI-sized (or paper-sized) population can hit.
    """
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    d = two_lambda - 1
    cells = (2 * d + 1) ** 2
    return d, _next_pow2(32 * cells), _N_HASHES


def _positions(token: bytes, n_bits: int, n_hashes: int) -> List[int]:
    # Keyless slicing: the token is already a PRF output, so overlapping
    # 4-byte windows give independent-enough positions for a Bloom filter.
    return [
        int.from_bytes(token[2 * i : 2 * i + 4], "big") % n_bits
        for i in range(n_hashes)
    ]


@dataclass(frozen=True)
class BloomFilter:
    """An immutable Bloom filter over cell tokens."""

    bits: bytes
    n_bits: int
    n_hashes: int

    def __post_init__(self) -> None:
        if self.n_bits <= 0 or self.n_bits % 8:
            raise ValueError("n_bits must be a positive multiple of 8")
        if len(self.bits) != self.n_bits // 8:
            raise ValueError("filter body does not match n_bits")
        if self.n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")

    @classmethod
    def build(
        cls, tokens: Sequence[bytes], n_bits: int, n_hashes: int
    ) -> "BloomFilter":
        """Insert every token into a fresh ``n_bits``-wide filter."""
        bits = bytearray(n_bits // 8)
        for token in tokens:
            for pos in _positions(token, n_bits, n_hashes):
                bits[pos >> 3] |= 1 << (pos & 7)
        return cls(bits=bytes(bits), n_bits=n_bits, n_hashes=n_hashes)

    def contains(self, token: bytes) -> bool:
        """Membership test: no false negatives, tuned-away false positives."""
        return all(
            self.bits[pos >> 3] & (1 << (pos & 7))
            for pos in _positions(token, self.n_bits, self.n_hashes)
        )


@dataclass(frozen=True)
class BloomLocationSubmission:
    """One SU's Bloom location message: own-cell token + range filter."""

    user_id: int
    cell_token: bytes
    range_filter: BloomFilter

    def __post_init__(self) -> None:
        if len(self.cell_token) < 4:
            raise ValueError("cell token must be at least 4 bytes")
        k = self.range_filter.n_hashes
        if 2 * (k - 1) + 4 > len(self.cell_token):
            raise ValueError("cell token too short for the filter's hash count")

    def wire_bytes(self) -> int:
        """Protocol payload: user id + token + filter body."""
        return 4 + len(self.cell_token) + len(self.range_filter.bits)

    def wire_size(self) -> int:
        """Payload plus framing, mirroring the encoded byte length."""
        return self.wire_bytes() + LOCATION_FRAMING

    def trace_fields(self) -> Dict[str, int]:
        """The byte-accounting fields the flight recorder stores per message."""
        return {
            "su": self.user_id,
            "payload_bytes": self.wire_bytes(),
            "wire_size": self.wire_size(),
            "filter_bits": self.range_filter.n_bits,
        }


def _box_cells(cell: Cell, grid: GridSpec, d: int) -> List[Cell]:
    m, n = cell
    return [
        (mm, nn)
        for mm in range(max(0, m - d), min(grid.rows - 1, m + d) + 1)
        for nn in range(max(0, n - d), min(grid.cols - 1, n + d) + 1)
    ]


def _token_messages(cells: Sequence[Cell]) -> List[bytes]:
    return [_CELL_DOMAIN + struct.pack(">II", m, n) for m, n in cells]


def cell_tokens(cells: Sequence[Cell], g0: bytes) -> List[bytes]:
    """Keyed tokens of cells under ``g0``'s derived location key, batched."""
    kb = derive_key(g0, LOCATION_KEY_LABEL)
    return [
        digest[:_TOKEN_BYTES]
        for digest in hmac_digest_batch(kb, _token_messages(cells))
    ]


def submit_location_bloom(
    user_id: int,
    cell: Cell,
    g0: bytes,
    grid: GridSpec,
    two_lambda: int,
) -> BloomLocationSubmission:
    """Bidder side: token own cell, Bloom-filter the interference box."""
    grid.require(cell)
    d, n_bits, n_hashes = bloom_params(two_lambda)
    tokens = cell_tokens([cell] + _box_cells(cell, grid, d), g0)
    return BloomLocationSubmission(
        user_id=user_id,
        cell_token=tokens[0],
        range_filter=BloomFilter.build(tokens[1:], n_bits, n_hashes),
    )


def submit_locations_bloom(
    cells: Sequence[Cell],
    g0: bytes,
    grid: GridSpec,
    two_lambda: int,
) -> List[BloomLocationSubmission]:
    """All users' submissions through one token batch (in-process drivers).

    Token-identical to :func:`submit_location_bloom` per user; user ids are
    the dense slot indices, matching :func:`build_bloom_conflict_graph`.
    """
    d, n_bits, n_hashes = bloom_params(two_lambda)
    boxes = []
    flat: List[Cell] = []
    for cell in cells:
        grid.require(cell)
        box = _box_cells(cell, grid, d)
        boxes.append(len(box))
        flat.append(cell)
        flat.extend(box)
    tokens = cell_tokens(flat, g0)
    subs = []
    cursor = 0
    for i, box_len in enumerate(boxes):
        own = tokens[cursor]
        box_tokens = tokens[cursor + 1 : cursor + 1 + box_len]
        cursor += 1 + box_len
        subs.append(
            BloomLocationSubmission(
                user_id=i,
                cell_token=own,
                range_filter=BloomFilter.build(box_tokens, n_bits, n_hashes),
            )
        )
    return subs


def build_bloom_conflict_graph(
    submissions: Sequence[BloomLocationSubmission],
) -> ConflictGraph:
    """Auctioneer side: pairwise filter-membership tests -> conflict graph.

    Same contract as the PPBS builder: ``submissions[i].user_id`` must be
    the dense index ``i``, and one direction of the symmetric-box test
    suffices.
    """
    for idx, sub in enumerate(submissions):
        if sub.user_id != idx:
            raise ValueError(
                f"submissions must be dense: slot {idx} holds user {sub.user_id}"
            )
    edges = set()
    n = len(submissions)
    for i in range(n):
        si = submissions[i]
        for j in range(i + 1, n):
            if submissions[j].range_filter.contains(si.cell_token):
                edges.add((i, j))
    return ConflictGraph(n_users=n, edges=frozenset(edges))


def encode_location_bloom(submission: BloomLocationSubmission) -> bytes:
    """Serialize: tag | user u32 | token_len u8 | token | n_bits u32 |
    n_hashes u8 | filter body."""
    flt = submission.range_filter
    return b"".join(
        (
            BLOOM_LOCATION_TAG,
            struct.pack(">IB", submission.user_id, len(submission.cell_token)),
            submission.cell_token,
            struct.pack(">IB", flt.n_bits, flt.n_hashes),
            flt.bits,
        )
    )


def decode_location_bloom(data: bytes) -> BloomLocationSubmission:
    """Strict inverse of :func:`encode_location_bloom`."""
    if len(data) < 1 or data[:1] != BLOOM_LOCATION_TAG:
        raise CodecError("not a bloom location payload")
    try:
        if len(data) < 6:
            raise CodecError("truncated bloom location header")
        user_id, token_len = struct.unpack(">IB", data[1:6])
        if token_len < 4:
            raise CodecError("cell token must be at least 4 bytes")
        offset = 6
        token = data[offset : offset + token_len]
        if len(token) != token_len:
            raise CodecError("truncated cell token")
        offset += token_len
        if len(data) < offset + 5:
            raise CodecError("truncated filter parameters")
        n_bits, n_hashes = struct.unpack(">IB", data[offset : offset + 5])
        offset += 5
        if n_bits <= 0 or n_bits % 8:
            raise CodecError("filter n_bits must be a positive multiple of 8")
        if n_hashes < 1 or 2 * (n_hashes - 1) + 4 > token_len:
            raise CodecError("filter hash count does not fit the token")
        bits = data[offset : offset + n_bits // 8]
        if len(bits) != n_bits // 8:
            raise CodecError("truncated filter body")
        offset += n_bits // 8
        if offset != len(data):
            raise CodecError("trailing bytes after bloom location payload")
        return BloomLocationSubmission(
            user_id=user_id,
            cell_token=token,
            range_filter=BloomFilter(
                bits=bits, n_bits=n_bits, n_hashes=n_hashes
            ),
        )
    except CodecError:
        raise
    except (struct.error, ValueError) as exc:
        raise CodecError(str(exc)) from exc
