"""LPPA — the paper's contribution: PPBS + PSD.

* Privacy Preserving Bid Submission: private location submission
  (:mod:`repro.lppa.location`), basic (:mod:`repro.lppa.bids_basic`) and
  advanced (:mod:`repro.lppa.bids_advanced`) private bid submission.
* Private Spectrum Distribution: masked-table allocation
  (:mod:`repro.lppa.psd`) and TTP charging (:mod:`repro.lppa.ttp`).
* Endpoints and orchestration: :mod:`repro.lppa.auctioneer`,
  :mod:`repro.lppa.session`, pseudonym mixing in :mod:`repro.lppa.idpool`.
"""

from repro.lppa.auctioneer import Auctioneer
from repro.lppa.campaign import Campaign, RoundRecord
from repro.lppa.cloaking import cloak_cell, cloak_users, run_cloaked_auction
from repro.lppa.batching import (
    ChargeQueue,
    ChargingReport,
    TtpSchedule,
    simulate_charging,
)
from repro.lppa.codec import (
    decode_bids,
    decode_location,
    encode_bids,
    encode_location,
    framing_overhead,
)
from repro.lppa.bids_advanced import (
    BidScale,
    ChannelDisclosure,
    SubmissionDisclosure,
    disguise_and_expand,
    submit_bids_advanced,
)
from repro.lppa.fastsim import FastLppaResult, IntegerMaskedTable, run_fast_lppa
from repro.lppa.bids_basic import (
    decrypt_bid_value,
    encrypt_bid_value,
    submit_bids_basic,
)
from repro.lppa.idpool import IdPool
from repro.lppa.location import (
    build_private_conflict_graph,
    coordinate_width,
    submit_location,
)
from repro.lppa.messages import BidSubmission, LocationSubmission, MaskedBid
from repro.lppa.policies import (
    KeepZeroPolicy,
    LinearDecreasingPolicy,
    UniformDisguisePolicy,
    UniformReplacePolicy,
    ZeroDisguisePolicy,
)
from repro.lppa.psd import MaskedBidTable
from repro.lppa.session import LppaResult, run_lppa_auction
from repro.lppa.ttp import ChargeDecision, ChargeStatus, TrustedThirdParty

__all__ = [
    "Auctioneer",
    "Campaign",
    "RoundRecord",
    "cloak_cell",
    "cloak_users",
    "run_cloaked_auction",
    "ChargeQueue",
    "ChargingReport",
    "TtpSchedule",
    "simulate_charging",
    "decode_bids",
    "decode_location",
    "encode_bids",
    "encode_location",
    "framing_overhead",
    "BidScale",
    "ChannelDisclosure",
    "SubmissionDisclosure",
    "disguise_and_expand",
    "submit_bids_advanced",
    "FastLppaResult",
    "IntegerMaskedTable",
    "run_fast_lppa",
    "decrypt_bid_value",
    "encrypt_bid_value",
    "submit_bids_basic",
    "IdPool",
    "build_private_conflict_graph",
    "coordinate_width",
    "submit_location",
    "BidSubmission",
    "LocationSubmission",
    "MaskedBid",
    "KeepZeroPolicy",
    "LinearDecreasingPolicy",
    "UniformDisguisePolicy",
    "UniformReplacePolicy",
    "ZeroDisguisePolicy",
    "MaskedBidTable",
    "LppaResult",
    "run_lppa_auction",
    "ChargeDecision",
    "ChargeStatus",
    "TrustedThirdParty",
]
