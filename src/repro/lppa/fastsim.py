"""Fast numeric simulation of an LPPA round (for the large experiment sweeps).

The HMAC masking is *order-preserving by design*: every decision the
auctioneer makes — conflict edges, per-channel bid order, column maxima —
equals what it would compute from the underlying integers.  The test suite
proves this equivalence on the real crypto path (identical conflict graphs,
identical rankings, identical allocations for a fixed RNG).  The evaluation
sweeps of Figs. 4-5 need thousands of auction rounds, so they run this
simulator, which executes *exactly the same value pipeline*
(:func:`repro.lppa.bids_advanced.disguise_and_expand`) and the same
Algorithm 3, skipping only the HMAC/encryption plumbing whose outputs are
functionally determined by those values.

Anything that measures the cryptography itself (communication cost,
protocol latency, TTP verification) uses the full path in
:mod:`repro.lppa.session` instead.

:func:`run_fast_lppa` is a thin wrapper over the round core
(:mod:`repro.lppa.round`) with the plain (integer) value backend; the
:class:`~repro.lppa.round.tables.IntegerMaskedTable` and
:class:`~repro.lppa.round.results.FastLppaResult` it historically defined
are re-exported from their new homes.  (``derive_round_rngs`` lives in
:mod:`repro.lppa.entropy`; the deprecated re-export from here is gone.)
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

from repro.obs import trace
from repro.auction.bidders import SecondaryUser
from repro.auction.conflict import ConflictGraph
from repro.lppa import entropy as _entropy
from repro.lppa.policies import ZeroDisguisePolicy
from repro.lppa.round import (
    IN_PROCESS_DRIVER,
    PLAIN_BACKEND,
    FastLppaResult,
    IntegerMaskedTable,
    RoundState,
    execute_round,
)
from repro.lppa.round.sharding import resolve_shards
from repro.utils.rng import Seed, fresh_rng

__all__ = [
    "IntegerMaskedTable",
    "FastLppaResult",
    "run_fast_lppa",
]


def run_fast_lppa(
    users: Sequence[SecondaryUser],
    *,
    two_lambda: int,
    bmax: int,
    rd: int = 4,
    cr: int = 8,
    policy: Union[ZeroDisguisePolicy, Sequence[ZeroDisguisePolicy], None] = None,
    rng: Optional[random.Random] = None,
    entropy: Optional[Seed] = None,
    conflict: Optional[ConflictGraph] = None,
    revalidate: bool = False,
    pricing: str = "first",
    shards: Optional[int] = None,
    scheme: Optional[str] = None,
) -> FastLppaResult:
    """One LPPA round at integer level: disguise/expand, allocate, charge.

    The conflict graph is the plaintext one — provably equal to the private
    protocol's output.  Charging follows the TTP's rules: a winner whose
    *true* offset value lies in the zero band ``[0, rd]`` is invalid.

    ``entropy`` opts into the label-addressed seeding of
    :func:`repro.lppa.entropy.derive_round_rngs` (overriding ``rng``):
    every user draws from its own stream, so the round's results match a
    full-crypto :func:`repro.lppa.session.run_lppa_auction` run with the
    same ``entropy`` and do not depend on how other randomness consumers
    interleave.  With neither ``rng`` nor ``entropy`` the round is
    non-deterministic via a fork-safe fresh RNG.

    ``revalidate`` enables the section-V.B extension: the TTP's
    invalid-winner notifications feed back into the allocation loop, which
    retries the channel instead of wasting it (at the cost of
    ``ttp_rejections`` extra TTP queries and the per-query information
    leak the paper's batch mode avoids).

    ``pricing`` selects the charging rule: ``"first"`` (the paper) or
    ``"second"`` (the truthfulness extension of
    :mod:`repro.auction.pricing`, incompatible with ``revalidate``).

    ``shards`` (argument, else ``REPRO_SHARDS``, else off) enables scale
    mode: conflict-graph construction goes through the grid-bucket
    prefilter and — with per-channel rankings — fans out over worker
    processes, bit-identically to the default path (see
    :mod:`repro.lppa.round.sharding`).

    ``scheme`` resolves exactly as in :func:`repro.lppa.session.run_lppa_auction`
    (argument, else active scheme, else ``$REPRO_SCHEME``, else ``ppbs``) and
    is validated here; the *result* is scheme-independent by construction —
    every registered scheme shares the integer value pipeline this simulator
    executes, which is what the per-scheme differential suites pin.
    """
    from repro.lppa.schemes.registry import resolve_scheme

    resolve_scheme(scheme)  # validate the name; the value pipeline is shared
    if pricing not in ("first", "second"):
        raise ValueError('pricing must be "first" or "second"')
    if pricing == "second" and revalidate:
        raise ValueError("second pricing and revalidation cannot be combined")
    if not users:
        raise ValueError("need at least one user")
    n_channels = users[0].n_channels
    if any(u.n_channels != n_channels for u in users):
        raise ValueError("all users must bid over the same channel set")
    if entropy is not None:
        user_rngs, alloc_rng = _entropy.derive_round_rngs(entropy, len(users))
    else:
        if rng is None:
            rng = fresh_rng()
        user_rngs = [rng] * len(users)
        alloc_rng = rng

    # §IV.C.3: "the zero-replace probabilities are selected independently
    # by each user" — accept one shared policy or one per user.
    if policy is None or isinstance(policy, ZeroDisguisePolicy):
        per_user = [policy] * len(users)
    else:
        per_user = list(policy)
        if len(per_user) != len(users):
            raise ValueError("need exactly one policy per user")

    state = RoundState(
        backend=PLAIN_BACKEND,
        driver=IN_PROCESS_DRIVER,
        n_users=len(users),
        n_channels=n_channels,
        two_lambda=two_lambda,
        bmax=bmax,
        rd=rd,
        cr=cr,
        users=users,
        user_rngs=user_rngs,
        alloc_rng=alloc_rng,
        policies=per_user,
        pricing=pricing,
        revalidate=revalidate,
        conflict=conflict,
        tr=trace.get_active(),
        shards=resolve_shards(shards),
    )
    execute_round(state)
    result: FastLppaResult = state.result
    return result
