"""Fast numeric simulation of an LPPA round (for the large experiment sweeps).

The HMAC masking is *order-preserving by design*: every decision the
auctioneer makes — conflict edges, per-channel bid order, column maxima —
equals what it would compute from the underlying integers.  The test suite
proves this equivalence on the real crypto path (identical conflict graphs,
identical rankings, identical allocations for a fixed RNG).  The evaluation
sweeps of Figs. 4-5 need thousands of auction rounds, so they run this
simulator, which executes *exactly the same value pipeline*
(:func:`repro.lppa.bids_advanced.disguise_and_expand`) and the same
Algorithm 3, skipping only the HMAC/encryption plumbing whose outputs are
functionally determined by those values.

Anything that measures the cryptography itself (communication cost,
protocol latency, TTP verification) uses the full path in
:mod:`repro.lppa.session` instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.obs import trace
from repro.auction.allocation import greedy_allocate, greedy_allocate_validated
from repro.auction.pricing import greedy_allocate_priced, second_price_charge
from repro.auction.bidders import SecondaryUser
from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.auction.table import BidTable
from repro.lppa.bids_advanced import (
    BidScale,
    ChannelDisclosure,
    SubmissionDisclosure,
    disguise_and_expand,
)
from repro.lppa.policies import ZeroDisguisePolicy
from repro.utils.rng import Seed, fresh_rng, spawn_rng

__all__ = [
    "IntegerMaskedTable",
    "FastLppaResult",
    "run_fast_lppa",
    "derive_round_rngs",
]


def derive_round_rngs(
    entropy: Seed, n_users: int
) -> Tuple[List[random.Random], random.Random]:
    """Per-user bidder RNGs plus the allocation RNG for one auction round.

    This derivation is the *shared* seeding contract of the fast simulator
    and the full-crypto session: user ``i``'s disguise/expansion draws come
    from the stream labelled ``("bidder", str(i))`` and the allocation's
    channel/tie choices from ``("alloc",)``.  Because both paths call
    :func:`repro.lppa.bids_advanced.disguise_and_expand` *first* on the
    per-user stream, the same ``entropy`` makes them commit to identical
    masked values — the differential-equivalence tests assert the
    consequences (identical rankings, allocations and charges).
    """
    user_rngs = [spawn_rng(entropy, "bidder", str(i)) for i in range(n_users)]
    return user_rngs, spawn_rng(entropy, "alloc")


class IntegerMaskedTable(BidTable):
    """What the masked table *is*, numerically: every cell holds a value.

    Unlike :class:`~repro.auction.table.PlainBidTable`, zeros (spread or
    disguised) are genuine entries — the auctioneer cannot tell them apart,
    which is the entire point of the advanced scheme.
    """

    def __init__(self, values: Sequence[Sequence[int]]) -> None:
        if not values:
            raise ValueError("bid table needs at least one row")
        widths = {len(row) for row in values}
        if len(widths) != 1:
            raise ValueError("all rows must cover the same channels")
        self._n_channels = widths.pop()
        if self._n_channels < 1:
            raise ValueError("bid table needs at least one channel")
        self._values = [list(map(int, row)) for row in values]
        self._n_users = len(values)
        self._live: List[Set[int]] = [
            set(range(self._n_users)) for _ in range(self._n_channels)
        ]

    @property
    def n_channels(self) -> int:
        return self._n_channels

    def has_entries(self) -> bool:
        return any(self._live)

    def channel_bidders(self, channel: int) -> Set[int]:
        self._check_channel(channel)
        return set(self._live[channel])

    def max_bidders(self, channel: int) -> List[int]:
        self._check_channel(channel)
        live = self._live[channel]
        if not live:
            raise ValueError(f"channel {channel} has no remaining bids")
        best = max(self._values[b][channel] for b in live)
        return sorted(b for b in live if self._values[b][channel] == best)

    def remove_row(self, bidder: int) -> None:
        for live in self._live:
            live.discard(bidder)

    def remove_entry(self, bidder: int, channel: int) -> None:
        self._check_channel(channel)
        self._live[channel].discard(bidder)

    def ranking(self, channel: int) -> List[List[int]]:
        """Equivalence-class ranking, identical in shape to the masked table's."""
        self._check_channel(channel)
        by_value: Dict[int, List[int]] = {}
        for bidder in range(self._n_users):
            by_value.setdefault(self._values[bidder][channel], []).append(bidder)
        return [by_value[v] for v in sorted(by_value, reverse=True)]

    def rankings(self) -> List[List[List[int]]]:
        """All channels' rankings (the attacker's full view)."""
        return [self.ranking(ch) for ch in range(self._n_channels)]

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self._n_channels:
            raise IndexError(f"channel {channel} outside 0..{self._n_channels - 1}")


@dataclass(frozen=True)
class FastLppaResult:
    """Same shape as :class:`~repro.lppa.session.LppaResult`, minus wire sizes.

    ``ttp_rejections`` counts invalid-winner notifications consumed during
    allocation; it is zero unless the round ran with ``revalidate=True``.
    """

    outcome: AuctionOutcome
    conflict_graph: ConflictGraph
    rankings: List[List[List[int]]]
    disclosures: Tuple[SubmissionDisclosure, ...]
    ttp_rejections: int = 0


def run_fast_lppa(
    users: Sequence[SecondaryUser],
    *,
    two_lambda: int,
    bmax: int,
    rd: int = 4,
    cr: int = 8,
    policy: Union[ZeroDisguisePolicy, Sequence[ZeroDisguisePolicy], None] = None,
    rng: Optional[random.Random] = None,
    entropy: Optional[Seed] = None,
    conflict: Optional[ConflictGraph] = None,
    revalidate: bool = False,
    pricing: str = "first",
) -> FastLppaResult:
    """One LPPA round at integer level: disguise/expand, allocate, charge.

    The conflict graph is the plaintext one — provably equal to the private
    protocol's output.  Charging follows the TTP's rules: a winner whose
    *true* offset value lies in the zero band ``[0, rd]`` is invalid.

    ``entropy`` opts into the label-addressed seeding of
    :func:`derive_round_rngs` (overriding ``rng``): every user draws from
    its own stream, so the round's results match a full-crypto
    :func:`repro.lppa.session.run_lppa_auction` run with the same
    ``entropy`` and do not depend on how other randomness consumers
    interleave.  With neither ``rng`` nor ``entropy`` the round is
    non-deterministic via a fork-safe fresh RNG.

    ``revalidate`` enables the section-V.B extension: the TTP's
    invalid-winner notifications feed back into the allocation loop, which
    retries the channel instead of wasting it (at the cost of
    ``ttp_rejections`` extra TTP queries and the per-query information
    leak the paper's batch mode avoids).

    ``pricing`` selects the charging rule: ``"first"`` (the paper) or
    ``"second"`` (the truthfulness extension of
    :mod:`repro.auction.pricing`, incompatible with ``revalidate``).
    """
    if pricing not in ("first", "second"):
        raise ValueError('pricing must be "first" or "second"')
    if pricing == "second" and revalidate:
        raise ValueError("second pricing and revalidation cannot be combined")
    if not users:
        raise ValueError("need at least one user")
    n_channels = users[0].n_channels
    if any(u.n_channels != n_channels for u in users):
        raise ValueError("all users must bid over the same channel set")
    if entropy is not None:
        user_rngs, alloc_rng = derive_round_rngs(entropy, len(users))
    else:
        if rng is None:
            rng = fresh_rng()
        user_rngs = [rng] * len(users)
        alloc_rng = rng
    scale = BidScale(bmax=bmax, rd=rd, cr=cr)

    # §IV.C.3: "the zero-replace probabilities are selected independently
    # by each user" — accept one shared policy or one per user.
    if policy is None or isinstance(policy, ZeroDisguisePolicy):
        per_user = [policy] * len(users)
    else:
        per_user = list(policy)
        if len(per_user) != len(users):
            raise ValueError("need exactly one policy per user")

    # The same four phase scopes as the full-crypto session, so a fastsim
    # artifact and a session artifact line up key-for-key in `metrics diff`
    # (fastsim records no byte counters — it has no wire objects).  The
    # flight recorder likewise gets the same round/ranking/assignment events
    # as the session, minus the wire messages the simulator never builds.
    tr = trace.get_active()
    if tr is not None:
        tr.round_begin()
        tr.meta(
            "auction_announcement",
            vis="public",
            n_users=len(users),
            n_channels=n_channels,
            bmax=bmax,
            two_lambda=two_lambda,
            fastsim=True,
        )
    with obs.phase("bid_submission"):
        disclosures = tuple(
            SubmissionDisclosure(
                user_id=idx,
                channels=tuple(
                    disguise_and_expand(
                        user.bids, scale, user_rngs[idx], policy=per_user[idx]
                    )
                ),
            )
            for idx, user in enumerate(users)
        )
        obs.count("lppa.bid_submissions", len(disclosures))

    with obs.phase("location_submission"):
        if conflict is None:
            conflict = build_conflict_graph([u.cell for u in users], two_lambda)
        obs.count("lppa.location_submissions", len(users))

    def true_bid(bidder: int, channel: int) -> int:
        return disclosures[bidder].channels[channel].true_bid

    with obs.phase("psd_allocation"):
        table = IntegerMaskedTable(
            [[c.masked_expanded for c in d.channels] for d in disclosures]
        )
        rankings = table.rankings()
        if tr is not None:
            for channel, classes in enumerate(rankings):
                tr.ranking(channel, classes)
        rejections = 0
        sales = assignments = None
        if pricing == "second":
            sales = greedy_allocate_priced(table, conflict, alloc_rng)
        elif revalidate:
            assignments, rejections = greedy_allocate_validated(
                table,
                conflict,
                alloc_rng,
                lambda bidder, channel: true_bid(bidder, channel) > 0,
            )
        else:
            assignments = greedy_allocate(table, conflict, alloc_rng)

    with obs.phase("ttp_charging"):
        wins = []
        if pricing == "second":
            for sale in sales:
                valid = true_bid(sale.bidder, sale.channel) > 0
                charge = second_price_charge(sale, true_bid) if valid else 0
                wins.append(
                    WinRecord(
                        bidder=sale.bidder,
                        channel=sale.channel,
                        charge=charge,
                        valid=valid,
                    )
                )
        else:
            for a in assignments:
                valid = true_bid(a.bidder, a.channel) > 0
                wins.append(
                    WinRecord(
                        bidder=a.bidder,
                        channel=a.channel,
                        charge=true_bid(a.bidder, a.channel) if valid else 0,
                        valid=valid,
                    )
                )
        if tr is not None:
            for record in wins:
                tr.instant(
                    "assignment",
                    vis="auctioneer",
                    bidder=record.bidder,
                    channel=record.channel,
                )
        obs.count("lppa.winners", len(wins))
    obs.count("lppa.fast_rounds")
    if tr is not None:
        tr.round_end(winners=len(wins))
    return FastLppaResult(
        outcome=AuctionOutcome(n_users=len(users), wins=tuple(wins)),
        conflict_graph=conflict,
        rankings=rankings,
        disclosures=disclosures,
        ttp_rejections=rejections,
    )
