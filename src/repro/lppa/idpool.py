"""Per-round pseudonym mixing (section V.C.3).

A user participating in several auctions under one identity lets the
auctioneer accumulate constraints across rounds (and winning repeatedly
hands the attacker high-confidence BCM input).  The paper's remedy is to
"mix the buyers' IDs once the auction finished or use different ID pools in
each auction".  :class:`IdPool` implements exactly that: a fresh random
bijection between true user indices and wire pseudonyms per round, known to
the users (each knows its own pseudonym) but opaque to the auctioneer.

:class:`EpochIdPool` is the *dynamic* counterpart the long-lived epoch
service (:mod:`repro.service`) needs: SUs acquire a pseudonym on join and
release it on leave, and — critically — an id released by a mid-run
departure is **quarantined until the next epoch window** rather than
returned to the free pool.  Reissuing a just-released id within the same
epoch window is a real collision: a late frame (or a lingering
constraint in the auctioneer's view) attributed to the departed SU would
silently bind to the newcomer holding the same id, conflating two
distinct users for both accounting and the BCM adversary.  Reuse across
epoch windows is fine — that is exactly the paper's "different ID pools
in each auction" mixing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Set, Tuple

__all__ = ["IdPool", "EpochIdPool", "IdPoolExhausted"]


@dataclass(frozen=True)
class IdPool:
    """One round's pseudonym assignment."""

    pseudonyms: Tuple[int, ...]  # pseudonyms[user] -> wire id

    def __post_init__(self) -> None:
        if len(set(self.pseudonyms)) != len(self.pseudonyms):
            raise ValueError("pseudonyms must be unique")

    @classmethod
    def fresh(cls, n_users: int, rng: random.Random, *, id_space: int = 1 << 20) -> "IdPool":
        """Draw ``n_users`` distinct pseudonyms from ``[0, id_space)``."""
        if n_users < 1:
            raise ValueError("need at least one user")
        if id_space < n_users:
            raise ValueError("id space smaller than the user population")
        return cls(pseudonyms=tuple(rng.sample(range(id_space), n_users)))

    @property
    def n_users(self) -> int:
        return len(self.pseudonyms)

    def wire_id(self, user: int) -> int:
        """The pseudonym user ``user`` submits under this round."""
        return self.pseudonyms[user]

    def reverse_map(self) -> Dict[int, int]:
        """wire id -> true user index (held by users/TTP, not the auctioneer)."""
        return {wire: user for user, wire in enumerate(self.pseudonyms)}


class IdPoolExhausted(RuntimeError):
    """No free pseudonym is available (live + quarantined ids fill the space)."""


class EpochIdPool:
    """Dynamic pseudonym allocator with epoch-window release quarantine.

    ``acquire()`` draws a pseudonym not currently held by anyone;
    ``release(id)`` parks it in quarantine; ``advance_epoch()`` — called at
    each epoch boundary — returns the previous window's quarantined ids to
    the free pool.  The invariant under test in
    ``tests/lppa/test_idpool.py``: an id released in epoch window ``e`` is
    never handed out again before ``advance_epoch()`` moves the service to
    window ``e + 1``.

    Draws are deterministic in the supplied ``rng`` (the service seeds it
    from the run seed), so epoch runs are replayable end to end.
    """

    def __init__(
        self, rng: random.Random, *, id_space: int = 1 << 20
    ) -> None:
        if id_space < 1:
            raise ValueError("id space must be positive")
        self._rng = rng
        self._id_space = id_space
        self._in_use: Set[int] = set()
        self._quarantine: Set[int] = set()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """The current epoch window index (starts at 0)."""
        return self._epoch

    @property
    def in_use(self) -> frozenset:
        return frozenset(self._in_use)

    @property
    def quarantined(self) -> frozenset:
        """Ids released this window, unavailable until the next one."""
        return frozenset(self._quarantine)

    def acquire(self) -> int:
        """Draw a pseudonym that is neither live nor quarantined."""
        unavailable = len(self._in_use) + len(self._quarantine)
        if unavailable >= self._id_space:
            raise IdPoolExhausted(
                f"{len(self._in_use)} live + {len(self._quarantine)} "
                f"quarantined ids exhaust the space of {self._id_space}"
            )
        while True:
            candidate = self._rng.randrange(self._id_space)
            if candidate not in self._in_use and candidate not in self._quarantine:
                self._in_use.add(candidate)
                return candidate

    def release(self, pseudonym: int) -> None:
        """Retire a live pseudonym; it stays quarantined this epoch window."""
        if pseudonym not in self._in_use:
            raise ValueError(f"pseudonym {pseudonym} is not live")
        self._in_use.remove(pseudonym)
        self._quarantine.add(pseudonym)

    def advance_epoch(self) -> int:
        """Open the next epoch window; frees the quarantined ids.

        Returns the number of ids returned to circulation.
        """
        freed = len(self._quarantine)
        self._quarantine.clear()
        self._epoch += 1
        return freed
