"""Per-round pseudonym mixing (section V.C.3).

A user participating in several auctions under one identity lets the
auctioneer accumulate constraints across rounds (and winning repeatedly
hands the attacker high-confidence BCM input).  The paper's remedy is to
"mix the buyers' IDs once the auction finished or use different ID pools in
each auction".  :class:`IdPool` implements exactly that: a fresh random
bijection between true user indices and wire pseudonyms per round, known to
the users (each knows its own pseudonym) but opaque to the auctioneer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["IdPool"]


@dataclass(frozen=True)
class IdPool:
    """One round's pseudonym assignment."""

    pseudonyms: Tuple[int, ...]  # pseudonyms[user] -> wire id

    def __post_init__(self) -> None:
        if len(set(self.pseudonyms)) != len(self.pseudonyms):
            raise ValueError("pseudonyms must be unique")

    @classmethod
    def fresh(cls, n_users: int, rng: random.Random, *, id_space: int = 1 << 20) -> "IdPool":
        """Draw ``n_users`` distinct pseudonyms from ``[0, id_space)``."""
        if n_users < 1:
            raise ValueError("need at least one user")
        if id_space < n_users:
            raise ValueError("id space smaller than the user population")
        return cls(pseudonyms=tuple(rng.sample(range(id_space), n_users)))

    @property
    def n_users(self) -> int:
        return len(self.pseudonyms)

    def wire_id(self, user: int) -> int:
        """The pseudonym user ``user`` submits under this round."""
        return self.pseudonyms[user]

    def reverse_map(self) -> Dict[int, int]:
        """wire id -> true user index (held by users/TTP, not the auctioneer)."""
        return {wire: user for user, wire in enumerate(self.pseudonyms)}
