"""Wire messages of the LPPA protocol, with byte-accurate size accounting.

Theorem 4 of the paper quantifies the bid-submission overhead as
``h * k * N * (3w - 1) * (w + 1)`` bits; to compare that prediction against
reality the message classes below know their own serialized sizes.  Digests
travel as fixed-length byte strings; ciphertexts as (nonce || ct) blobs.

The auctioneer sees *only* these structures — never a
:class:`~repro.crypto.keys.KeyRing`, never a plaintext bid or coordinate.

Two size accountings coexist deliberately:

* ``wire_bytes()`` — *payload only* (digests, ciphertexts, user ids):
  what Theorem 4 models;
* ``wire_size()`` — the **exact serialized size** the codec in
  :mod:`repro.lppa.codec` produces, framing (tags, counts, length
  prefixes) included.  The flight recorder records this per message, and
  ``tests/lppa/test_messages.py`` pins each ``wire_size()`` to
  ``len(encode_*(message))`` so the accounting cannot drift from the
  encoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.prefix.membership import MaskedSet

__all__ = ["LocationSubmission", "MaskedBid", "BidSubmission"]

#: Bytes used to carry a user/pseudonym identifier on the wire.
USER_ID_BYTES = 4

#: Codec framing per masked set: ``digest_bytes: u8 | count: u16``.
SET_HEADER_BYTES = 3

#: One-byte message tag (``'L'`` / ``'B'``).
TAG_BYTES = 1

#: ``n_channels: u16`` in a bid submission.
CHANNEL_COUNT_BYTES = 2

#: ``ct_len: u16`` length prefix per ciphertext.
CIPHERTEXT_LEN_BYTES = 2


@dataclass(frozen=True)
class LocationSubmission:
    """Step iii of the private location submission protocol.

    Carries, for one bidder, the masked prefix family of each coordinate and
    the masked cover of its interference range on each axis:
    ``H_g0(G(loc_x))``, ``H_g0(Q([loc_x - d, loc_x + d]))`` and likewise for
    ``y`` (``d`` being the interference half-width).
    """

    user_id: int
    x_family: MaskedSet
    x_range: MaskedSet
    y_family: MaskedSet
    y_range: MaskedSet

    def wire_bytes(self) -> int:
        """Total serialized size in bytes."""
        return USER_ID_BYTES + sum(
            s.wire_bytes()
            for s in (self.x_family, self.x_range, self.y_family, self.y_range)
        )

    def wire_size(self) -> int:
        """Exact codec output size: payload plus tag and four set headers."""
        return self.wire_bytes() + TAG_BYTES + 4 * SET_HEADER_BYTES

    def trace_fields(self) -> Dict[str, int]:
        """The per-message fields the flight recorder logs (scheme seam)."""
        return {
            "su": self.user_id,
            "payload_bytes": self.wire_bytes(),
            "wire_size": self.wire_size(),
            "digest_bytes": self.x_family.digest_bytes,
        }


@dataclass(frozen=True)
class MaskedBid:
    """One channel's worth of a bid submission.

    ``family`` is ``H_gb_r(G(e))`` for the (expanded, possibly disguised)
    bid value ``e``; ``tail`` is ``H_gb_r(Q([e, e_max]))`` — intersecting
    another bid's family with this tail answers "is that bid >= e?".
    ``ciphertext`` is (nonce || CTR-encryption) of the *true* expanded value
    under the TTP key ``gc`` — unaltered even when the masked sets disguise
    a zero, which is exactly how the TTP later unmasks invalid winners.
    """

    family: MaskedSet
    tail: MaskedSet
    ciphertext: bytes

    def __post_init__(self) -> None:
        if len(self.ciphertext) < 5:
            raise ValueError("ciphertext must contain a 4-byte nonce and payload")

    def wire_bytes(self) -> int:
        """Serialized size in bytes (masked sets + ciphertext)."""
        return self.family.wire_bytes() + self.tail.wire_bytes() + len(self.ciphertext)

    def wire_size(self) -> int:
        """Exact on-wire size within a bid submission: two set headers plus
        the ciphertext length prefix on top of the payload."""
        return self.wire_bytes() + 2 * SET_HEADER_BYTES + CIPHERTEXT_LEN_BYTES


@dataclass(frozen=True)
class BidSubmission:
    """A bidder's full bid vector, masked, one :class:`MaskedBid` per channel."""

    user_id: int
    channel_bids: Tuple[MaskedBid, ...]

    def __post_init__(self) -> None:
        if not self.channel_bids:
            raise ValueError("a bid submission must cover at least one channel")

    @property
    def n_channels(self) -> int:
        return len(self.channel_bids)

    def wire_bytes(self) -> int:
        """Total serialized size in bytes across all channels."""
        return USER_ID_BYTES + sum(mb.wire_bytes() for mb in self.channel_bids)

    def wire_size(self) -> int:
        """Exact codec output size: tag, channel count, then per-channel
        framed :meth:`MaskedBid.wire_size` blocks."""
        return (
            TAG_BYTES
            + USER_ID_BYTES
            + CHANNEL_COUNT_BYTES
            + sum(mb.wire_size() for mb in self.channel_bids)
        )

    def masked_set_bytes(self) -> int:
        """Size of the prefix material alone (what Theorem 4 models)."""
        return sum(
            mb.family.wire_bytes() + mb.tail.wire_bytes() for mb in self.channel_bids
        )

    def trace_fields(self) -> Dict[str, int]:
        """The per-message fields the flight recorder logs (scheme seam)."""
        return {
            "su": self.user_id,
            "payload_bytes": self.wire_bytes(),
            "wire_size": self.wire_size(),
            "masked_set_bytes": self.masked_set_bytes(),
            "n_channels": self.n_channels,
            "digest_bytes": self.channel_bids[0].family.digest_bytes,
        }
