"""TTP batch scheduling (section V.C.2, "Reducing the Online Time of TTP").

The TTP is only *periodically* available; the paper proposes queueing the
results of several auctions and processing them in one online window, sized
by "the real-time requirement of the system and the longest online time of
TTP".  This module makes that trade concrete:

* :class:`TtpSchedule` — the TTP's availability pattern: it comes online
  every ``period`` time units and can process ``capacity`` charge requests
  per window;
* :class:`ChargeQueue` — the auctioneer-side queue; auctions deposit their
  winner batches with a timestamp, windows drain them FIFO;
* :func:`simulate_charging` — replays a sequence of auction rounds against
  a schedule and reports per-request charging latency plus the TTP's duty
  cycle (fraction of windows actually used) — the two quantities the
  paper's sizing discussion balances.

Time is unitless (think "minutes"); only ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Sequence, Tuple
import collections

from repro import obs
from repro.obs import trace

__all__ = ["TtpSchedule", "ChargeQueue", "ChargingReport", "simulate_charging"]


@dataclass(frozen=True)
class TtpSchedule:
    """When the TTP is online and how much one window can process."""

    period: float
    capacity: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    def windows_until(self, horizon: float):
        """Window times 0, period, 2*period, ... up to and including horizon."""
        t = 0.0
        while t <= horizon:
            yield t
            t += self.period


@dataclass
class ChargeQueue:
    """FIFO of (deposit time, request id) charge requests."""

    _queue: Deque[Tuple[float, int]] = field(default_factory=collections.deque)
    _next_id: int = 0

    def deposit(self, time: float, count: int) -> List[int]:
        """Enqueue ``count`` requests arriving at ``time``; returns their ids."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._queue and time < self._queue[-1][0]:
            raise ValueError("deposits must be time-ordered")
        ids = []
        for _ in range(count):
            self._queue.append((time, self._next_id))
            ids.append(self._next_id)
            self._next_id += 1
        return ids

    def drain(self, time: float, capacity: int) -> List[Tuple[float, int]]:
        """One TTP window: pop up to ``capacity`` requests deposited <= time."""
        served = []
        while self._queue and len(served) < capacity and self._queue[0][0] <= time:
            served.append(self._queue.popleft())
        return served

    def __len__(self) -> int:
        return len(self._queue)


@dataclass(frozen=True)
class ChargingReport:
    """What a charging campaign cost in latency and TTP effort."""

    n_requests: int
    served: int
    mean_latency: float
    max_latency: float
    windows_used: int
    windows_total: int

    @property
    def duty_cycle(self) -> float:
        """Fraction of scheduled windows that actually processed work."""
        return self.windows_used / self.windows_total if self.windows_total else 0.0

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table emission."""
        return {
            "requests": self.n_requests,
            "served": self.served,
            "mean_latency": round(self.mean_latency, 2),
            "max_latency": round(self.max_latency, 2),
            "duty_cycle": round(self.duty_cycle, 3),
        }


def simulate_charging(
    schedule: TtpSchedule,
    round_times: Sequence[float],
    winners_per_round: Sequence[int],
    *,
    horizon: float = None,
) -> ChargingReport:
    """Replay auction rounds against a TTP schedule.

    ``round_times[i]`` is when round ``i``'s winner batch is deposited;
    ``winners_per_round[i]`` its size.  The horizon defaults to the last
    deposit plus enough windows to drain everything.
    """
    if len(round_times) != len(winners_per_round):
        raise ValueError("round_times and winners_per_round must align")
    if sorted(round_times) != list(round_times):
        raise ValueError("round_times must be non-decreasing")

    total = sum(winners_per_round)
    if horizon is None:
        # Enough windows to drain the backlog even in the worst packing.
        last = round_times[-1] if round_times else 0.0
        need = (total // schedule.capacity + 2) * schedule.period
        horizon = last + need

    queue = ChargeQueue()
    deposits = list(zip(round_times, winners_per_round))
    deposit_idx = 0
    latencies: List[float] = []
    windows_used = 0
    windows_total = 0
    tr = trace.get_active()
    with obs.timer("ttp.charging_simulation"):
        for window_time in schedule.windows_until(horizon):
            while (
                deposit_idx < len(deposits)
                and deposits[deposit_idx][0] <= window_time
            ):
                time, count = deposits[deposit_idx]
                queue.deposit(time, count)
                deposit_idx += 1
            served = queue.drain(window_time, schedule.capacity)
            windows_total += 1
            if served:
                windows_used += 1
                latencies.extend(
                    window_time - deposited for deposited, _ in served
                )
                if tr is not None:
                    tr.instant(
                        "ttp_window",
                        vis="ttp",
                        sim_time=window_time,
                        served=len(served),
                        backlog=len(queue),
                    )
        # Deposits after the final window never get served within the horizon.
        while deposit_idx < len(deposits):
            queue.deposit(*deposits[deposit_idx])
            deposit_idx += 1
    obs.count("ttp.charge_requests", total)
    obs.count("ttp.windows_simulated", windows_total)
    if tr is not None:
        tr.instant(
            "ttp_charging_summary",
            vis="ttp",
            requests=total,
            served=len(latencies),
            windows_used=windows_used,
            windows_total=windows_total,
        )

    return ChargingReport(
        n_requests=total,
        served=len(latencies),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        max_latency=max(latencies) if latencies else 0.0,
        windows_used=windows_used,
        windows_total=windows_total,
    )
