"""Private Location Submission protocol (section IV.A).

Each SU masks its coordinates and interference ranges; the auctioneer tests,
for every pair (i, j),

    H_g0(G(loc_x^i)) ∩ H_g0(Q([loc_x^j - d, loc_x^j + d])) != ∅
    H_g0(G(loc_y^i)) ∩ H_g0(Q([loc_y^j - d, loc_y^j + d])) != ∅

and declares a conflict when both hold.  Since ``x_i ∈ [x_j - d, x_j + d]``
iff ``|x_i - x_j| <= d``, one direction of the test suffices and the result
is exactly the plaintext conflict graph — which the tests assert.

The paper's conflict predicate is the *strict* ``|Δ| < 2λ`` on integer
coordinates, so the submitted range uses half-width ``d = 2λ - 1``.
Coordinates are cell indices (non-negative integers, as the paper assumes).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.auction.conflict import ConflictGraph
from repro.geo.grid import Cell, GridSpec
from repro.lppa.messages import LocationSubmission
from repro.prefix.membership import MaskSpec, is_member, mask_specs
from repro.prefix.prefixes import bit_width_for, prefix_family
from repro.prefix.ranges import range_cover

__all__ = [
    "coordinate_width",
    "submit_location",
    "submit_locations",
    "build_private_conflict_graph",
]

_X_DOMAIN = b"lppa/loc/x"
_Y_DOMAIN = b"lppa/loc/y"


def coordinate_width(grid: GridSpec, two_lambda: int) -> int:
    """Bit width covering every coordinate plus the range overhang.

    Ranges extend up to ``2λ - 1`` beyond the largest coordinate; using a
    width that accommodates the overhang lets us skip clamping on the high
    side (clamping is still applied at 0 on the low side).
    """
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    return bit_width_for(max(grid.rows, grid.cols) - 1 + (two_lambda - 1))


def _location_specs(
    cell: Cell, g0: bytes, grid: GridSpec, two_lambda: int
) -> List[MaskSpec]:
    """The four prefix sets of one submission, as batchable mask specs."""
    grid.require(cell)
    width = coordinate_width(grid, two_lambda)
    d = two_lambda - 1
    m, n = cell
    return [
        MaskSpec.of(g0, prefix_family(m, width), domain=_X_DOMAIN),
        MaskSpec.of(
            g0, range_cover(max(0, m - d), m + d, width), domain=_X_DOMAIN
        ),
        MaskSpec.of(g0, prefix_family(n, width), domain=_Y_DOMAIN),
        MaskSpec.of(
            g0, range_cover(max(0, n - d), n + d, width), domain=_Y_DOMAIN
        ),
    ]


def submit_location(
    user_id: int,
    cell: Cell,
    g0: bytes,
    grid: GridSpec,
    two_lambda: int,
) -> LocationSubmission:
    """Bidder side: mask own coordinates and interference ranges."""
    x_family, x_range, y_family, y_range = mask_specs(
        _location_specs(cell, g0, grid, two_lambda)
    )
    return LocationSubmission(
        user_id=user_id,
        x_family=x_family,
        x_range=x_range,
        y_family=y_family,
        y_range=y_range,
    )


def submit_locations(
    cells: Sequence[Cell],
    g0: bytes,
    grid: GridSpec,
    two_lambda: int,
) -> List[LocationSubmission]:
    """All users' submissions through one mask batch (in-process drivers).

    Digest-identical to calling :func:`submit_location` per user — the SUs
    share ``g0``, so a whole population's location masking is one backend
    call.  User ids are the dense slot indices, matching what
    :func:`build_private_conflict_graph` expects.
    """
    specs = [
        spec
        for cell in cells
        for spec in _location_specs(cell, g0, grid, two_lambda)
    ]
    masked = mask_specs(specs)
    return [
        LocationSubmission(
            user_id=i,
            x_family=masked[4 * i],
            x_range=masked[4 * i + 1],
            y_family=masked[4 * i + 2],
            y_range=masked[4 * i + 3],
        )
        for i in range(len(cells))
    ]


def build_private_conflict_graph(
    submissions: Sequence[LocationSubmission],
) -> ConflictGraph:
    """Auctioneer side: pairwise masked membership tests -> conflict graph.

    ``submissions[i].user_id`` must equal ``i`` (the session layer enforces
    the dense numbering; pseudonymised ids are mapped before this point).
    """
    for idx, sub in enumerate(submissions):
        if sub.user_id != idx:
            raise ValueError(
                f"submissions must be dense: slot {idx} holds user {sub.user_id}"
            )
    edges = set()
    n = len(submissions)
    for i in range(n):
        si = submissions[i]
        for j in range(i + 1, n):
            sj = submissions[j]
            if is_member(si.x_family, sj.x_range) and is_member(
                si.y_family, sj.y_range
            ):
                edges.add((i, j))
    return ConflictGraph(n_users=n, edges=frozenset(edges))
