"""Private Location Submission protocol (section IV.A).

Each SU masks its coordinates and interference ranges; the auctioneer tests,
for every pair (i, j),

    H_g0(G(loc_x^i)) ∩ H_g0(Q([loc_x^j - d, loc_x^j + d])) != ∅
    H_g0(G(loc_y^i)) ∩ H_g0(Q([loc_y^j - d, loc_y^j + d])) != ∅

and declares a conflict when both hold.  Since ``x_i ∈ [x_j - d, x_j + d]``
iff ``|x_i - x_j| <= d``, one direction of the test suffices and the result
is exactly the plaintext conflict graph — which the tests assert.

The paper's conflict predicate is the *strict* ``|Δ| < 2λ`` on integer
coordinates, so the submitted range uses half-width ``d = 2λ - 1``.
Coordinates are cell indices (non-negative integers, as the paper assumes).
"""

from __future__ import annotations

from typing import Sequence

from repro.auction.conflict import ConflictGraph
from repro.geo.grid import Cell, GridSpec
from repro.lppa.messages import LocationSubmission
from repro.prefix.membership import is_member, mask_range, mask_value
from repro.prefix.prefixes import bit_width_for

__all__ = [
    "coordinate_width",
    "submit_location",
    "build_private_conflict_graph",
]

_X_DOMAIN = b"lppa/loc/x"
_Y_DOMAIN = b"lppa/loc/y"


def coordinate_width(grid: GridSpec, two_lambda: int) -> int:
    """Bit width covering every coordinate plus the range overhang.

    Ranges extend up to ``2λ - 1`` beyond the largest coordinate; using a
    width that accommodates the overhang lets us skip clamping on the high
    side (clamping is still applied at 0 on the low side).
    """
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    return bit_width_for(max(grid.rows, grid.cols) - 1 + (two_lambda - 1))


def submit_location(
    user_id: int,
    cell: Cell,
    g0: bytes,
    grid: GridSpec,
    two_lambda: int,
) -> LocationSubmission:
    """Bidder side: mask own coordinates and interference ranges."""
    grid.require(cell)
    width = coordinate_width(grid, two_lambda)
    d = two_lambda - 1
    m, n = cell
    return LocationSubmission(
        user_id=user_id,
        x_family=mask_value(g0, m, width, domain=_X_DOMAIN),
        x_range=mask_range(g0, max(0, m - d), m + d, width, domain=_X_DOMAIN),
        y_family=mask_value(g0, n, width, domain=_Y_DOMAIN),
        y_range=mask_range(g0, max(0, n - d), n + d, width, domain=_Y_DOMAIN),
    )


def build_private_conflict_graph(
    submissions: Sequence[LocationSubmission],
) -> ConflictGraph:
    """Auctioneer side: pairwise masked membership tests -> conflict graph.

    ``submissions[i].user_id`` must equal ``i`` (the session layer enforces
    the dense numbering; pseudonymised ids are mapped before this point).
    """
    for idx, sub in enumerate(submissions):
        if sub.user_id != idx:
            raise ValueError(
                f"submissions must be dense: slot {idx} holds user {sub.user_id}"
            )
    edges = set()
    n = len(submissions)
    for i in range(n):
        si = submissions[i]
        for j in range(i + 1, n):
            sj = submissions[j]
            if is_member(si.x_family, sj.x_range) and is_member(
                si.y_family, sj.y_range
            ):
                edges.add((i, j))
    return ConflictGraph(n_users=n, edges=frozenset(edges))
