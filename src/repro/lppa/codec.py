"""Byte-level wire codec for the protocol messages.

:mod:`repro.lppa.messages` carries masked sets as Python objects and knows
their payload sizes; this module provides the actual serialization a
deployment would put on the socket, so the communication-cost numbers rest
on a format that demonstrably round-trips.

Format (all integers big-endian):

* masked set:  ``digest_bytes: u8 | count: u16 | count * digest_bytes``
  (digests in lexicographic order — sets have no order, a canonical one
  makes encoding deterministic);
* location submission:  ``'L' | user_id: u32 | x_family | x_range |
  y_family | y_range``;
* bid submission:  ``'B' | user_id: u32 | n_channels: u16`` then per
  channel ``family | tail | ct_len: u16 | ciphertext``.

Framing overhead (tags, counts, lengths) is deliberately *excluded* from
``wire_bytes()``/Theorem-4 accounting, which model payload only; use
:func:`framing_overhead` when sizing real sockets.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.lppa.messages import BidSubmission, LocationSubmission, MaskedBid
from repro.prefix.membership import MaskedSet

__all__ = [
    "encode_masked_set",
    "decode_masked_set",
    "encode_location",
    "decode_location",
    "encode_bids",
    "decode_bids",
    "framing_overhead",
]

_LOCATION_TAG = b"L"
_BID_TAG = b"B"


class CodecError(ValueError):
    """Malformed wire data."""


def encode_masked_set(masked: MaskedSet) -> bytes:
    """Serialize one masked set (canonical digest order)."""
    if len(masked) > 0xFFFF:
        raise CodecError("masked set too large for the u16 count field")
    parts = [struct.pack(">BH", masked.digest_bytes, len(masked))]
    parts.extend(sorted(masked.digests))
    return b"".join(parts)


def decode_masked_set(data: bytes, offset: int = 0) -> Tuple[MaskedSet, int]:
    """Decode one masked set; returns (set, next offset)."""
    if len(data) < offset + 3:
        raise CodecError("truncated masked-set header")
    digest_bytes, count = struct.unpack_from(">BH", data, offset)
    if digest_bytes < 4:
        # Zero-length digests would let any count pass the length
        # arithmetic for free, and MaskedSet refuses truncation below
        # 4 bytes as unsafe — reject both on the wire.
        raise CodecError(f"digest_bytes {digest_bytes} below the 4-byte minimum")
    offset += 3
    end = offset + digest_bytes * count
    if len(data) < end:
        raise CodecError("truncated masked-set body")
    digests = frozenset(
        data[offset + i * digest_bytes : offset + (i + 1) * digest_bytes]
        for i in range(count)
    )
    if len(digests) != count:
        raise CodecError("duplicate digests on the wire")
    return MaskedSet(digests, digest_bytes=digest_bytes), end


def encode_location(submission: LocationSubmission) -> bytes:
    """Serialize a location submission."""
    return b"".join(
        [
            _LOCATION_TAG,
            struct.pack(">I", submission.user_id),
            encode_masked_set(submission.x_family),
            encode_masked_set(submission.x_range),
            encode_masked_set(submission.y_family),
            encode_masked_set(submission.y_range),
        ]
    )


def decode_location(data: bytes) -> LocationSubmission:
    """Parse a location submission; raises :class:`CodecError` on malformed bytes."""
    if not data.startswith(_LOCATION_TAG):
        raise CodecError("not a location submission")
    if len(data) < 5:
        raise CodecError("truncated location header")
    (user_id,) = struct.unpack_from(">I", data, 1)
    offset = 5
    sets = []
    for _ in range(4):
        masked, offset = decode_masked_set(data, offset)
        sets.append(masked)
    if offset != len(data):
        raise CodecError("trailing bytes after location submission")
    try:
        return LocationSubmission(
            user_id=user_id,
            x_family=sets[0],
            x_range=sets[1],
            y_family=sets[2],
            y_range=sets[3],
        )
    except CodecError:
        raise
    except ValueError as exc:
        # Wire-valid but semantically impossible (message invariants); a
        # decoder must reject it, not leak a constructor error.
        raise CodecError(f"invalid location submission: {exc}") from exc


def encode_bids(submission: BidSubmission) -> bytes:
    """Serialize a bid submission."""
    if submission.n_channels > 0xFFFF:
        raise CodecError("too many channels for the u16 count field")
    parts = [
        _BID_TAG,
        struct.pack(">IH", submission.user_id, submission.n_channels),
    ]
    for masked_bid in submission.channel_bids:
        if len(masked_bid.ciphertext) > 0xFFFF:
            raise CodecError("ciphertext too large for the u16 length field")
        parts.append(encode_masked_set(masked_bid.family))
        parts.append(encode_masked_set(masked_bid.tail))
        parts.append(struct.pack(">H", len(masked_bid.ciphertext)))
        parts.append(masked_bid.ciphertext)
    return b"".join(parts)


def decode_bids(data: bytes) -> BidSubmission:
    """Parse a bid submission; raises :class:`CodecError` on malformed bytes."""
    if not data.startswith(_BID_TAG):
        raise CodecError("not a bid submission")
    if len(data) < 7:
        raise CodecError("truncated bid header")
    user_id, n_channels = struct.unpack_from(">IH", data, 1)
    offset = 7
    channel_bids = []
    for _ in range(n_channels):
        family, offset = decode_masked_set(data, offset)
        tail, offset = decode_masked_set(data, offset)
        if len(data) < offset + 2:
            raise CodecError("truncated ciphertext length")
        (ct_len,) = struct.unpack_from(">H", data, offset)
        offset += 2
        if len(data) < offset + ct_len:
            raise CodecError("truncated ciphertext")
        ciphertext = data[offset : offset + ct_len]
        offset += ct_len
        try:
            masked_bid = MaskedBid(family=family, tail=tail, ciphertext=ciphertext)
        except CodecError:
            raise
        except ValueError as exc:
            raise CodecError(f"invalid masked bid: {exc}") from exc
        channel_bids.append(masked_bid)
    if offset != len(data):
        raise CodecError("trailing bytes after bid submission")
    try:
        return BidSubmission(user_id=user_id, channel_bids=tuple(channel_bids))
    except CodecError:
        raise
    except ValueError as exc:
        raise CodecError(f"invalid bid submission: {exc}") from exc


def framing_overhead(message) -> int:
    """Bytes the codec adds on top of ``wire_bytes()`` payload accounting.

    Delegates to the messages' own ``wire_size()`` accounting so there is a
    single source of truth for framing arithmetic.
    """
    if isinstance(message, (LocationSubmission, BidSubmission, MaskedBid)):
        return message.wire_size() - message.wire_bytes()
    raise TypeError(f"unsupported message type {type(message)!r}")
