"""The Trusted Third Party (sections IV, V.B, V.C.2).

The TTP's three jobs:

1. **Key distribution** — generate ``g0``, ``gb_1..gb_k``, ``gc``, ``rd``
   and ``cr`` and share them with the bidders (:meth:`TrustedThirdParty.setup`).
2. **Winner charging** — decrypt a winning bid's ``gc`` ciphertext, undo the
   ``cr`` expansion, and either return the charge or report an *invalid
   winner* when the plaintext lands in the zero band ``[0, rd]`` (a
   disguised or genuine zero won the channel).
3. **Cheating detection** — for valid winners, recompute the masked prefix
   family from the decrypted value and compare with what the bidder
   submitted; a mismatch means the bidder sealed one price to the
   auctioneer and another to the TTP.

Charging is *batched* (section V.C.2): the auctioneer queues the whole
winner list (possibly from several auctions) and the periodically-online
TTP processes it in one go.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro import obs
from repro.obs import trace
from repro.crypto.cache import note_key_epoch
from repro.crypto.keys import KeyRing, generate_keyring
from repro.lppa.bids_advanced import BidScale
from repro.lppa.bids_basic import decrypt_bid_value
from repro.lppa.bids_ope import OpeBid, ope_encoder_for
from repro.prefix.membership import mask_value

__all__ = ["ChargeStatus", "ChargeDecision", "TrustedThirdParty"]

_BID_DOMAIN = b"lppa/bid/adv"

#: A charge request carries the channel id (u16) plus the winner's framed
#: masked bid; the decision going back is status (u8) + charge (u32).
CHANNEL_ID_BYTES = 2
CHARGE_DECISION_BYTES = 5


class ChargeStatus(enum.Enum):
    """Outcome of one charge verification."""

    VALID = "valid"
    INVALID_ZERO = "invalid-zero"
    CHEATING = "cheating"


@dataclass(frozen=True)
class ChargeDecision:
    """The TTP's verdict for one winning bid."""

    status: ChargeStatus
    charge: int  # original bid price; 0 unless VALID

    def __post_init__(self) -> None:
        if self.status is ChargeStatus.VALID and self.charge <= 0:
            raise ValueError("a VALID decision must carry a positive charge")
        if self.status is not ChargeStatus.VALID and self.charge != 0:
            raise ValueError("non-VALID decisions carry no charge")


class TrustedThirdParty:
    """Holds the key ring; performs charging and verification."""

    def __init__(self, keyring: KeyRing, scale: BidScale) -> None:
        if keyring.rd != scale.rd or keyring.cr != scale.cr:
            raise ValueError("key ring and bid scale disagree on rd/cr")
        self._keyring = keyring
        self._scale = scale
        # Key (re)distribution starts a new epoch: masked-digest caches of
        # retired keys are dropped eagerly (same-ring re-setup, as seeded
        # experiments do every round, keeps the cache warm; a partial
        # rotation — membership churn replacing only gc — keeps every
        # entry still masked under a live key).
        note_key_epoch(keyring.fingerprint(), keyring.live_keys())

    @classmethod
    def setup(
        cls,
        seed: bytes,
        n_channels: int,
        *,
        bmax: int,
        rd: int = 4,
        cr: int = 8,
    ) -> Tuple["TrustedThirdParty", KeyRing, BidScale]:
        """Generate keys and protocol parameters for one auction system.

        Returns (ttp, keyring, scale); the key ring goes to the bidders,
        the scale is public, the TTP keeps both.
        """
        keyring = generate_keyring(seed, n_channels, rd=rd, cr=cr)
        scale = BidScale(bmax=bmax, rd=rd, cr=cr)
        return cls(keyring, scale), keyring, scale

    @property
    def scale(self) -> BidScale:
        return self._scale

    def process_charge(self, channel: int, masked_bid: Any) -> ChargeDecision:
        """Decrypt, de-expand, classify and (for valid bids) verify one winner.

        ``masked_bid`` is either a PPBS :class:`~repro.lppa.messages.MaskedBid`
        or a Bloom-scheme :class:`~repro.lppa.bids_ope.OpeBid`; both carry the
        ``gc`` ciphertext and the wire-size accounting this method records.
        """
        obs.count("ttp.charges")
        tr = trace.get_active()
        if tr is not None:
            # The auctioneer originates (and therefore observes) the request;
            # bidder identity is deliberately absent — the TTP charges a
            # ciphertext, not a user.
            tr.message(
                "charge_request",
                channel=channel,
                payload_bytes=CHANNEL_ID_BYTES + masked_bid.wire_bytes(),
                wire_size=CHANNEL_ID_BYTES + masked_bid.wire_size(),
            )
        decision = self._decide(channel, masked_bid)
        if tr is not None:
            tr.message(
                "charge_decision",
                channel=channel,
                payload_bytes=CHARGE_DECISION_BYTES,
                wire_size=CHARGE_DECISION_BYTES,
                status=decision.status.value,
                charge=decision.charge,
            )
        return decision

    def _decide(self, channel: int, masked_bid: Any) -> ChargeDecision:
        if isinstance(masked_bid, OpeBid):
            return self._decide_ope(channel, masked_bid)
        expanded = decrypt_bid_value(self._keyring.gc, masked_bid.ciphertext)
        if expanded > self._scale.emax:
            return ChargeDecision(status=ChargeStatus.CHEATING, charge=0)
        offset_value = self._scale.contract(expanded)
        if self._scale.is_zero_marker(offset_value):
            return ChargeDecision(status=ChargeStatus.INVALID_ZERO, charge=0)

        # Verify the bidder masked the same value it sealed for us.
        expected_family = mask_value(
            self._keyring.channel_key(channel),
            expanded,
            self._scale.width,
            domain=_BID_DOMAIN,
        )
        if expected_family.digests != masked_bid.family.digests:
            return ChargeDecision(status=ChargeStatus.CHEATING, charge=0)
        return ChargeDecision(
            status=ChargeStatus.VALID, charge=offset_value - self._scale.rd
        )

    def _decide_ope(self, channel: int, ope_bid: OpeBid) -> ChargeDecision:
        """Bloom-scheme charging: same classification, OPE-based verification.

        Consistency check: re-encrypt the decrypted expanded value under the
        channel's OPE key and compare with the value the auctioneer ranked —
        a mismatch means the bidder sealed one price to the auctioneer and
        another to us.
        """
        expanded = decrypt_bid_value(self._keyring.gc, ope_bid.ciphertext)
        if expanded > self._scale.emax:
            return ChargeDecision(status=ChargeStatus.CHEATING, charge=0)
        offset_value = self._scale.contract(expanded)
        if self._scale.is_zero_marker(offset_value):
            return ChargeDecision(status=ChargeStatus.INVALID_ZERO, charge=0)
        encoder = ope_encoder_for(self._keyring.channel_key(channel), self._scale)
        if encoder.encrypt(expanded) != ope_bid.ope_value:
            return ChargeDecision(status=ChargeStatus.CHEATING, charge=0)
        return ChargeDecision(
            status=ChargeStatus.VALID, charge=offset_value - self._scale.rd
        )

    def process_batch(
        self, requests: Sequence[Tuple[int, Any]]
    ) -> List[ChargeDecision]:
        """Batched charging: one TTP online period serves many winners."""
        obs.count("ttp.batches")
        with obs.timer("ttp.batch"):
            return [self.process_charge(ch, mb) for ch, mb in requests]
