"""Advanced Private Bid Submission protocol (section IV.C.2).

Fixes the three leaks of the basic scheme:

1. **Cross-channel comparison** — each channel ``r`` gets its own HMAC key
   ``gb_r``, so masked bids on different channels are incomparable.
2. **Zero-frequency filtering and per-user availability** — a zero bid is
   (a) spread uniformly over the secret offset range ``[0, rd]`` so its
   masked value stops being the single most frequent ciphertext, and
   (b) with user-chosen probability *disguised* as a positive pretend value
   ``t`` (the masked sets are computed for ``t``; the TTP ciphertext keeps
   the truth).
3. **Range-prefix cardinality** — every tail cover is padded with random
   filler digests to the worst-case ``2w - 2`` elements, so set sizes stop
   ordering the bids.

Additionally every value is *expanded*: multiplied by the secret ``cr`` and
placed uniformly inside ``[cr*v, cr*(v+1) - 1]``.  Expansion is order-
preserving across distinct values but randomises the exact masked value, so
the plaintext-ciphertext pairs the auctioneer inevitably learns at charging
time do not let it dereference equal bids elsewhere in the table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.crypto.keys import KeyRing
from repro.lppa.bids_basic import encrypt_bid_value
from repro.lppa.messages import BidSubmission, MaskedBid
from repro.lppa.policies import KeepZeroPolicy, ZeroDisguisePolicy
from repro.prefix.membership import (
    DEFAULT_DIGEST_BYTES,
    MaskedSet,
    MaskSpec,
    mask_spec_digests,
    pad_masked_set,
)
from repro.prefix.prefixes import bit_width_for, prefix_family
from repro.prefix.ranges import max_cover_size, range_cover

__all__ = [
    "BidScale",
    "ChannelDisclosure",
    "SubmissionDisclosure",
    "disguise_and_expand",
    "submit_bids_advanced",
]

_BID_DOMAIN = b"lppa/bid/adv"


@dataclass(frozen=True)
class BidScale:
    """The public shape of the expanded bid domain.

    ``bmax`` bounds original bids; ``rd``/``cr`` come from the key ring.
    The expanded domain is ``[0, emax]`` with
    ``emax = cr * (bmax + rd + 1) - 1`` (the largest possible expansion of
    the largest possible offset bid), and ``width`` is its bit length —
    the ``w`` of Theorem 4 and of the ``2w - 2`` padding rule.
    """

    bmax: int
    rd: int
    cr: int

    def __post_init__(self) -> None:
        if self.bmax < 1:
            raise ValueError("bmax must be >= 1")
        if self.rd < 1:
            raise ValueError("the advanced scheme needs rd >= 1")
        if self.cr < 1:
            raise ValueError("cr must be >= 1")

    @property
    def emax(self) -> int:
        return self.cr * (self.bmax + self.rd + 1) - 1

    @property
    def width(self) -> int:
        return bit_width_for(self.emax)

    @property
    def pad_to(self) -> int:
        return max_cover_size(self.width)

    def offset_value(self, bid: int) -> int:
        """Step (i) for positive bids: add the secret offset."""
        if not 0 <= bid <= self.bmax:
            raise ValueError(f"bid {bid} outside [0, {self.bmax}]")
        return bid + self.rd

    def expand(self, value: int, rng: random.Random) -> int:
        """Step (ii): multiply by ``cr``, land uniformly in the value's slot."""
        if not 0 <= value <= self.bmax + self.rd:
            raise ValueError(f"offset value {value} outside [0, {self.bmax + self.rd}]")
        return self.cr * value + rng.randrange(self.cr)

    def contract(self, expanded: int) -> int:
        """TTP side: ``floor(e / cr)`` recovers the offset value."""
        if not 0 <= expanded <= self.emax:
            raise ValueError(f"expanded value {expanded} outside [0, {self.emax}]")
        return expanded // self.cr

    def is_zero_marker(self, offset_value: int) -> bool:
        """True when an offset value encodes an original zero (``<= rd``)."""
        return 0 <= offset_value <= self.rd


@dataclass(frozen=True)
class ChannelDisclosure:
    """SU-side record of what really happened on one channel.

    Used by tests and by the experiment harness's ground truth; never sent
    to the auctioneer.
    """

    true_bid: int
    pretend_value: int  # the offset value the masked sets encode
    true_expanded: int  # plaintext inside the gc ciphertext
    masked_expanded: int  # expanded value the masked sets encode
    disguised: bool


@dataclass(frozen=True)
class SubmissionDisclosure:
    """All per-channel disclosures of one submission."""

    user_id: int
    channels: Tuple[ChannelDisclosure, ...]


def disguise_and_expand(
    bids: Sequence[int],
    scale: BidScale,
    rng: random.Random,
    *,
    policy: Optional[ZeroDisguisePolicy] = None,
) -> List[ChannelDisclosure]:
    """Steps (i)-(ii): offset, zero disguise, and ``cr`` expansion.

    This is the complete *numeric* content of the advanced scheme — the
    full crypto path in :func:`submit_bids_advanced` and the fast simulator
    in :mod:`repro.lppa.fastsim` both run exactly this code, so the two are
    behaviourally identical by construction.
    """
    if policy is None:
        policy = KeepZeroPolicy()
    user_bmax = max(bids) if bids else 0
    disclosures: List[ChannelDisclosure] = []
    for bid in bids:
        if not 0 <= bid <= scale.bmax:
            raise ValueError(f"bid {bid} outside [0, {scale.bmax}]")
        if bid > 0:
            pretend = scale.offset_value(bid)  # b + rd
            true_offset = pretend
            disguised = False
        else:
            t = policy.sample(rng, user_bmax)
            if t > 0:
                # Disguise: masked sets pretend the bid is t.
                pretend = scale.offset_value(t)
                disguised = True
                true_offset = rng.randint(0, scale.rd)
            else:
                # Stay zero: spread uniformly over [0, rd].
                pretend = rng.randint(0, scale.rd)
                disguised = False
                true_offset = pretend
        masked_expanded = scale.expand(pretend, rng)
        true_expanded = (
            masked_expanded if not disguised else scale.expand(true_offset, rng)
        )
        disclosures.append(
            ChannelDisclosure(
                true_bid=bid,
                pretend_value=pretend,
                true_expanded=true_expanded,
                masked_expanded=masked_expanded,
                disguised=disguised,
            )
        )
    return disclosures


def submit_bids_advanced(
    user_id: int,
    bids: Sequence[int],
    keyring: KeyRing,
    scale: BidScale,
    rng: random.Random,
    *,
    policy: Optional[ZeroDisguisePolicy] = None,
) -> Tuple[BidSubmission, SubmissionDisclosure]:
    """Bidder side of the advanced scheme.

    Returns the wire submission plus the SU-private disclosure record.
    ``bids`` must have one entry per channel and the key ring must carry one
    channel key per entry.
    """
    if len(bids) != keyring.n_channels:
        raise ValueError(
            f"{len(bids)} bids but key ring has {keyring.n_channels} channel keys"
        )
    if keyring.rd != scale.rd or keyring.cr != scale.cr:
        raise ValueError("key ring and bid scale disagree on rd/cr")

    disclosures = disguise_and_expand(bids, scale, rng, policy=policy)
    width = scale.width
    ceiling = max(scale.pad_to, max_cover_size(width))

    # Masking consumes no randomness, so all channels' families and tail
    # covers go through one backend batch up front; the per-channel loop
    # below then draws pad fillers and ciphertext nonces in exactly the
    # order the digest-at-a-time implementation did.
    specs: List[MaskSpec] = []
    for channel, disclosure in enumerate(disclosures):
        key = keyring.channel_key(channel)
        specs.append(
            MaskSpec.of(
                key,
                prefix_family(disclosure.masked_expanded, width),
                domain=_BID_DOMAIN,
            )
        )
        specs.append(
            MaskSpec.of(
                key,
                range_cover(disclosure.masked_expanded, scale.emax, width),
                domain=_BID_DOMAIN,
            )
        )
    digests = mask_spec_digests(specs)

    channel_bids: List[MaskedBid] = []
    for channel, disclosure in enumerate(disclosures):
        family = MaskedSet(
            frozenset(digests[2 * channel]), digest_bytes=DEFAULT_DIGEST_BYTES
        )
        obs.count("prefix.masked_sets")
        obs.count("prefix.masked_digests", len(family))
        channel_bids.append(
            MaskedBid(
                family=family,
                tail=pad_masked_set(
                    set(digests[2 * channel + 1]),
                    ceiling=ceiling,
                    digest_bytes=DEFAULT_DIGEST_BYTES,
                    rng=rng,
                ),
                ciphertext=encrypt_bid_value(
                    keyring.gc, disclosure.true_expanded, rng
                ),
            )
        )

    return (
        BidSubmission(user_id=user_id, channel_bids=tuple(channel_bids)),
        SubmissionDisclosure(user_id=user_id, channels=tuple(disclosures)),
    )
