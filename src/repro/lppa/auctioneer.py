"""The (curious-but-honest) auctioneer endpoint.

Everything this class touches is masked: location submissions become a
conflict graph through pairwise membership tests, bid submissions become a
:class:`~repro.lppa.psd.MaskedBidTable`, Algorithm 3 allocates channels, and
winners' ciphertexts go to the TTP for charging.  The class never imports
:class:`~repro.crypto.keys.KeyRing` — it simply has no key material.

The honest-but-curious part: :meth:`channel_rankings` exposes the bid order
the auctioneer can always reconstruct from the masked sets.  That view is
what :mod:`repro.attacks.against_lppa` consumes.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.auction.allocation import Assignment, greedy_allocate
from repro.obs import trace
from repro.auction.conflict import ConflictGraph
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.lppa.location import build_private_conflict_graph
from repro.lppa.messages import BidSubmission, LocationSubmission, MaskedBid
from repro.lppa.psd import MaskedBidTable
from repro.lppa.ttp import ChargeStatus, TrustedThirdParty

__all__ = ["Auctioneer"]


class Auctioneer:
    """Runs one LPPA auction round over masked submissions."""

    def __init__(self, n_channels: int) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self._n_channels = n_channels
        self._conflict: Optional[ConflictGraph] = None
        self._table: Optional[MaskedBidTable] = None
        self._assignments: Optional[List[Assignment]] = None
        self._charge_material: List[Tuple[int, MaskedBid]] = []

    @property
    def n_channels(self) -> int:
        return self._n_channels

    @property
    def conflict_graph(self) -> ConflictGraph:
        if self._conflict is None:
            raise RuntimeError("location submissions not received yet")
        return self._conflict

    @property
    def assignments(self) -> List[Assignment]:
        if self._assignments is None:
            raise RuntimeError("allocation has not been run yet")
        return list(self._assignments)

    @property
    def table(self) -> MaskedBidTable:
        """The live masked table (sharded rounds rank its columns remotely)."""
        if self._table is None:
            raise RuntimeError("bid submissions not received yet")
        return self._table

    def receive_locations(
        self,
        submissions: Sequence[LocationSubmission],
        *,
        edges: Optional[FrozenSet[Tuple[int, int]]] = None,
    ) -> ConflictGraph:
        """PPBS location phase: masked membership tests -> conflict graph.

        ``edges`` short-circuits the in-process pairwise scan with an edge
        set already decided elsewhere — the sharded round core computes the
        same masked membership tests in worker processes
        (:func:`repro.lppa.round.sharding.sharded_conflict_edges`) and
        hands the result in here so the auctioneer's bookkeeping and trace
        emission stay identical to the serial path.
        """
        if edges is not None:
            for idx, sub in enumerate(submissions):
                if sub.user_id != idx:
                    raise ValueError(
                        f"submissions must be dense: slot {idx} holds user "
                        f"{sub.user_id}"
                    )
            self._conflict = ConflictGraph(
                n_users=len(submissions), edges=frozenset(edges)
            )
        else:
            self._conflict = build_private_conflict_graph(submissions)
        tr = trace.get_active()
        if tr is not None:
            tr.instant(
                "conflict_graph",
                vis="auctioneer",
                n_users=self._conflict.n_users,
                n_edges=self._conflict.n_edges,
            )
        return self._conflict

    def receive_bids(self, submissions: Sequence[BidSubmission]) -> None:
        """PPBS bid phase: stash the masked table."""
        for sub in submissions:
            if sub.n_channels != self._n_channels:
                raise ValueError(
                    f"submission covers {sub.n_channels} channels, expected "
                    f"{self._n_channels}"
                )
        self._table = MaskedBidTable(submissions)

    def channel_rankings(self) -> List[List[List[int]]]:
        """The curious view: per-channel bid order (equivalence classes)."""
        if self._table is None:
            raise RuntimeError("bid submissions not received yet")
        rankings = self._table.rankings()
        tr = trace.get_active()
        if tr is not None:
            for channel, classes in enumerate(rankings):
                tr.ranking(channel, classes)
        return rankings

    def run_allocation(self, rng: random.Random) -> List[Assignment]:
        """PSD allocation: Algorithm 3 over the masked table."""
        if self._table is None:
            raise RuntimeError("bid submissions not received yet")
        if self._conflict is None:
            raise RuntimeError("location submissions not received yet")
        # Keep the charge material before the allocator consumes the table.
        assignments = greedy_allocate(self._table, self._conflict, rng)
        self._assignments = assignments
        self._charge_material = [
            (a.channel, self._table.masked_bid(a.bidder, a.channel))
            for a in assignments
        ]
        tr = trace.get_active()
        if tr is not None:
            for a in assignments:
                tr.instant(
                    "assignment", vis="auctioneer", bidder=a.bidder, channel=a.channel
                )
        return list(assignments)

    def charge_material(self) -> List[Tuple[int, MaskedBid]]:
        """The winner ciphertexts queued for the TTP, in assignment order.

        This is the request half of the charging exchange; callers that
        reach the TTP over a transport (the network runtime's
        :class:`~repro.net.ttp_service.TtpService`) send exactly this and
        feed the decisions back through :meth:`assemble_outcome`.
        """
        if self._assignments is None:
            raise RuntimeError("allocation has not been run yet")
        return list(self._charge_material)

    def assemble_outcome(self, decisions, n_users: int) -> AuctionOutcome:
        """Combine TTP decisions (aligned with :meth:`charge_material`) into
        the round outcome.

        Invalid winners (disguised zeros) keep their allocation slot — their
        neighbours were already blocked during allocation — but pay nothing
        and do not count as satisfied, matching the paper's performance
        accounting.  A CHEATING verdict raises: the honest-bidder assumption
        of the model was violated.
        """
        if self._assignments is None:
            raise RuntimeError("allocation has not been run yet")
        if len(decisions) != len(self._assignments):
            raise ValueError(
                f"{len(decisions)} decisions for {len(self._assignments)} "
                "assignments"
            )
        wins = []
        for assignment, decision in zip(self._assignments, decisions):
            if decision.status is ChargeStatus.CHEATING:
                raise RuntimeError(
                    f"TTP flagged bidder {assignment.bidder} on channel "
                    f"{assignment.channel} as cheating"
                )
            wins.append(
                WinRecord(
                    bidder=assignment.bidder,
                    channel=assignment.channel,
                    charge=decision.charge,
                    valid=decision.status is ChargeStatus.VALID,
                )
            )
        return AuctionOutcome(n_users=n_users, wins=tuple(wins))

    def charge_winners(self, ttp: TrustedThirdParty, n_users: int) -> AuctionOutcome:
        """PSD charging: one batched TTP round, then assemble the outcome."""
        decisions = ttp.process_batch(self.charge_material())
        return self.assemble_outcome(decisions, n_users)
