"""Multi-round auction campaigns.

One LPPA round is :func:`repro.lppa.fastsim.run_fast_lppa` /
:func:`repro.lppa.session.run_lppa_auction`; real deployments run *series*
of rounds over a slowly-changing population.  :class:`Campaign` owns the
cross-round machinery the paper discusses in §V.C:

* per-round **re-bidding** (fresh sensing noise, same cells/urgencies);
* per-round **pseudonym pools** (on by default; §V.C.3) — the round results
  carry wire pseudonyms so attacker-facing views are unlinkable;
* accumulated **TTP charge batches** (§V.C.2) with deposit timestamps, so
  the batching model in :mod:`repro.lppa.batching` can price the schedule;
* a result time series for performance/privacy trend analysis.

The campaign runs on the fast simulator (the crypto path is round-for-round
equivalent; see DESIGN.md) — one campaign is typically dozens of rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.auction.bidders import SecondaryUser, rebid_users
from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.auction.outcome import AuctionOutcome
from repro.geo.database import GeoLocationDatabase
from repro.lppa.fastsim import FastLppaResult, run_fast_lppa
from repro.lppa.idpool import IdPool
from repro.lppa.policies import ZeroDisguisePolicy
from repro.utils.rng import fresh_rng

__all__ = ["RoundRecord", "Campaign"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything one campaign round produced.

    ``outcome`` and ``rankings`` are indexed by *true* user ids;
    ``pseudonyms`` maps them to the wire identities the auctioneer saw
    (``None`` when mixing is disabled — the linkable regime).
    """

    round_index: int
    deposit_time: float
    outcome: AuctionOutcome
    rankings: List[List[List[int]]]
    pseudonyms: Optional[IdPool]
    ttp_rejections: int


class Campaign:
    """A sequence of LPPA rounds over one bidder population."""

    def __init__(
        self,
        database: GeoLocationDatabase,
        users: Sequence[SecondaryUser],
        *,
        two_lambda: int,
        bmax: int,
        policy: Optional[ZeroDisguisePolicy] = None,
        mix_ids: bool = True,
        round_interval: float = 30.0,
        rd: int = 4,
        cr: int = 8,
        revalidate: bool = False,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not users:
            raise ValueError("need at least one user")
        if round_interval <= 0:
            raise ValueError("round_interval must be positive")
        self._database = database
        self._users = list(users)
        self._two_lambda = two_lambda
        self._bmax = bmax
        self._policy = policy
        self._mix_ids = mix_ids
        self._round_interval = round_interval
        self._rd = rd
        self._cr = cr
        self._revalidate = revalidate
        self._rng = rng if rng is not None else fresh_rng()
        # Locations never change within a campaign: one conflict graph.
        self._conflict: ConflictGraph = build_conflict_graph(
            [u.cell for u in self._users], two_lambda
        )
        self._records: List[RoundRecord] = []

    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def records(self) -> List[RoundRecord]:
        return list(self._records)

    @property
    def conflict_graph(self) -> ConflictGraph:
        return self._conflict

    def run_round(self) -> RoundRecord:
        """Execute one round: (re)bid, allocate, charge, record."""
        index = len(self._records)
        if index > 0:
            self._users = rebid_users(self._users, self._database, self._rng)
        result: FastLppaResult = run_fast_lppa(
            self._users,
            two_lambda=self._two_lambda,
            bmax=self._bmax,
            rd=self._rd,
            cr=self._cr,
            policy=self._policy,
            rng=self._rng,
            conflict=self._conflict,
            revalidate=self._revalidate,
        )
        record = RoundRecord(
            round_index=index,
            deposit_time=index * self._round_interval,
            outcome=result.outcome,
            rankings=result.rankings,
            pseudonyms=(
                IdPool.fresh(self.n_users, self._rng) if self._mix_ids else None
            ),
            ttp_rejections=result.ttp_rejections,
        )
        self._records.append(record)
        return record

    def run(self, n_rounds: int) -> List[RoundRecord]:
        """Execute ``n_rounds`` rounds and return their records."""
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        return [self.run_round() for _ in range(n_rounds)]

    # --- Aggregates ---------------------------------------------------------------

    def revenue_series(self) -> List[int]:
        """Sum of winning bids, one value per completed round."""
        return [r.outcome.sum_of_winning_bids() for r in self._records]

    def satisfaction_series(self) -> List[float]:
        """User satisfaction, one value per completed round."""
        return [r.outcome.user_satisfaction() for r in self._records]

    def charge_deposits(self) -> Tuple[List[float], List[int]]:
        """(deposit times, batch sizes) for the TTP batching model."""
        times = [r.deposit_time for r in self._records]
        sizes = [len(r.outcome.wins) for r in self._records]
        return times, sizes

    def linkable_rankings(self) -> List[List[List[List[int]]]]:
        """The attacker's cross-round view under *stable* identities.

        Raises when pseudonym mixing is on — that is the point of mixing:
        there is no linkable view to return.
        """
        if self._mix_ids:
            raise RuntimeError(
                "identities are mixed per round; cross-round linking is impossible"
            )
        return [r.rankings for r in self._records]

    def public_outcomes(self) -> List[AuctionOutcome]:
        """The published winner lists (indexed by true ids; under mixing the
        attacker would only see pseudonyms, so linking these requires the
        mixing to be off or broken)."""
        return [r.outcome for r in self._records]
