"""Label-addressed entropy: the seeding contract every LPPA path shares.

One auction round has exactly two kinds of randomness consumers:

* each bidder's disguise/expansion draws — stream ``("bidder", str(i))``;
* the auctioneer's channel/tie choices — stream ``("alloc",)``.

All three round executions (the full-crypto session, the integer fast
simulator and the networked runtime) derive their streams from the same
round ``entropy`` label through the functions below, and all of them hand
user ``i``'s stream to :func:`repro.lppa.bids_advanced.disguise_and_expand`
*first*.  The same ``entropy`` therefore makes every path commit to
identical masked values, which is what the differential-equivalence tests
(fastsim vs session, networked round vs session) pin down.

This module is deliberately leaf-level: it imports only
:mod:`repro.utils.rng`, so the round core, the wrappers and the network
client can all depend on it without cycles.  (It originally lived in
:mod:`repro.lppa.fastsim`; that deprecated re-export has been removed.)
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.utils.rng import Seed, spawn_rng

__all__ = ["alloc_rng", "bidder_rng", "derive_round_rngs"]


def bidder_rng(entropy: Seed, su_id: int) -> random.Random:
    """Bidder ``su_id``'s private masking stream for this round.

    This is the stream a networked SU derives locally when the ROUND_BEGIN
    frame announces the round's entropy label; it depends only on
    ``(entropy, su_id)``, never on the population size or on how other
    randomness consumers interleave.
    """
    return spawn_rng(entropy, "bidder", str(su_id))


def alloc_rng(entropy: Seed) -> random.Random:
    """The allocation's channel-order and tie-break stream for this round."""
    return spawn_rng(entropy, "alloc")


def derive_round_rngs(
    entropy: Seed, n_users: int
) -> Tuple[List[random.Random], random.Random]:
    """Per-user bidder RNGs plus the allocation RNG for one auction round.

    This derivation is the *shared* seeding contract of the fast simulator,
    the full-crypto session and the network runtime: user ``i``'s
    disguise/expansion draws come from the stream labelled
    ``("bidder", str(i))`` and the allocation's channel/tie choices from
    ``("alloc",)``.  Because every path calls
    :func:`repro.lppa.bids_advanced.disguise_and_expand` *first* on the
    per-user stream, the same ``entropy`` makes them commit to identical
    masked values — the differential-equivalence tests assert the
    consequences (identical rankings, allocations and charges).
    """
    return [bidder_rng(entropy, i) for i in range(n_users)], alloc_rng(entropy)
