"""Order-preserving-encrypted bid submission (the Bloom scheme's bid side).

The Bloom scheme replaces the prefix-masked bid sets with a per-channel
order-preserving encryption of the *expanded* bid: the auctioneer ranks the
OPE ciphertexts directly (no pairwise membership tests), while the TTP still
receives the usual ``gc`` ciphertext and checks consistency by re-deriving
the winner's OPE value.

The numeric pipeline is *shared with PPBS*: :func:`submit_bids_ope` runs
:func:`repro.lppa.bids_advanced.disguise_and_expand` on the same rng before
any scheme-specific randomness, so on identical entropy both schemes seal
identical expanded values — and, OPE being strictly monotone, produce
identical rankings, allocations and charges.  The differential suite pins
that equivalence.

Per channel ``r`` the OPE key is ``derive_key(gb_r, "bloom/ope")`` over the
domain ``[0, emax]``; the encoder table is deterministic in the key, so the
ciphertext byte width (``OrderPreservingEncoder.ciphertext_bytes``) is a
public per-channel constant — the Bloom analogue of Theorem 4's masked-set
size, which the trace auditor checks per submission.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import KeyRing, derive_key
from repro.crypto.ope import OrderPreservingEncoder
from repro.lppa.bids_advanced import (
    BidScale,
    SubmissionDisclosure,
    disguise_and_expand,
)
from repro.lppa.bids_basic import encrypt_bid_value
from repro.lppa.codec import CodecError
from repro.lppa.policies import ZeroDisguisePolicy

__all__ = [
    "OPE_BID_TAG",
    "OpeBid",
    "OpeBidSubmission",
    "decode_bids_ope",
    "encode_bids_ope",
    "ope_encoder_for",
    "reset_ope_cache",
    "submit_bids_ope",
]

#: Leading payload byte of OPE bid submissions (PPBS uses ``b"B"``).
OPE_BID_TAG = b"O"

#: Derivation label of a channel's OPE key under its ``gb_r``.
OPE_KEY_LABEL = "bloom/ope"

# Per-channel framing: OPE value length byte + ciphertext length u16.
OPE_BID_FRAMING = 1 + 2
# Submission framing: tag + channel count u16 (the user id is payload).
SUBMISSION_FRAMING_BASE = 1 + 2


@lru_cache(maxsize=None)
def _encoder(key: bytes, domain: int) -> OrderPreservingEncoder:
    return OrderPreservingEncoder(key, domain, gap_bits=16)


def ope_encoder_for(channel_key: bytes, scale: BidScale) -> OrderPreservingEncoder:
    """The (cached) OPE encoder of one channel over the expanded domain."""
    return _encoder(derive_key(channel_key, OPE_KEY_LABEL), scale.emax + 1)


def reset_ope_cache() -> None:
    """Drop cached encoders (compare-harness fairness between schemes)."""
    _encoder.cache_clear()


@dataclass(frozen=True)
class OpeBid:
    """One channel's sealed bid: OPE value for ranking + TTP ciphertext."""

    ope_value: int
    ope_bytes: int
    ciphertext: bytes

    def __post_init__(self) -> None:
        if self.ope_bytes < 1:
            raise ValueError("ope_bytes must be >= 1")
        if not 0 <= self.ope_value < 256**self.ope_bytes:
            raise ValueError("ope_value does not fit in ope_bytes")
        if len(self.ciphertext) < 5:
            raise ValueError("ciphertext must be at least 5 bytes")

    def wire_bytes(self) -> int:
        """Protocol payload: the OPE value body plus the TTP ciphertext."""
        return self.ope_bytes + len(self.ciphertext)

    def wire_size(self) -> int:
        """Payload plus per-bid framing, mirroring the encoded length."""
        return self.wire_bytes() + OPE_BID_FRAMING


@dataclass(frozen=True)
class OpeBidSubmission:
    """One SU's sealed bid vector (one :class:`OpeBid` per channel)."""

    user_id: int
    channel_bids: Tuple[OpeBid, ...]

    def __post_init__(self) -> None:
        if not self.channel_bids:
            raise ValueError("a bid submission must cover at least one channel")

    @property
    def n_channels(self) -> int:
        return len(self.channel_bids)

    def wire_bytes(self) -> int:
        """Protocol payload: user id plus every channel's sealed bid."""
        return 4 + sum(bid.wire_bytes() for bid in self.channel_bids)

    def wire_size(self) -> int:
        """Payload plus framing, mirroring the encoded byte length."""
        return (
            SUBMISSION_FRAMING_BASE
            + 4
            + sum(bid.wire_size() for bid in self.channel_bids)
        )

    def ope_material_bytes(self) -> int:
        """Total OPE value bytes — the Bloom analogue of masked-set bytes."""
        return sum(bid.ope_bytes for bid in self.channel_bids)

    def trace_fields(self) -> Dict[str, int]:
        """The byte-accounting fields the flight recorder stores per message."""
        return {
            "su": self.user_id,
            "payload_bytes": self.wire_bytes(),
            "wire_size": self.wire_size(),
            "ope_bytes": self.ope_material_bytes(),
            "n_channels": len(self.channel_bids),
        }


def submit_bids_ope(
    user_id: int,
    bids: "List[int]",
    keyring: KeyRing,
    scale: BidScale,
    rng: random.Random,
    *,
    policy: Optional[ZeroDisguisePolicy] = None,
) -> Tuple[OpeBidSubmission, SubmissionDisclosure]:
    """Bidder side of the Bloom scheme's bid submission.

    Same contract as :func:`repro.lppa.bids_advanced.submit_bids_advanced`:
    one bid per channel key, rd/cr agreement, and the shared
    :func:`disguise_and_expand` consumes the rng first.
    """
    if len(bids) != keyring.n_channels:
        raise ValueError(
            f"{len(bids)} bids but key ring has {keyring.n_channels} channel keys"
        )
    if keyring.rd != scale.rd or keyring.cr != scale.cr:
        raise ValueError("key ring and bid scale disagree on rd/cr")

    disclosures = disguise_and_expand(bids, scale, rng, policy=policy)
    channel_bids: List[OpeBid] = []
    for channel, disclosure in enumerate(disclosures):
        encoder = ope_encoder_for(keyring.channel_key(channel), scale)
        channel_bids.append(
            OpeBid(
                ope_value=encoder.encrypt(disclosure.masked_expanded),
                ope_bytes=encoder.ciphertext_bytes,
                ciphertext=encrypt_bid_value(
                    keyring.gc, disclosure.true_expanded, rng
                ),
            )
        )
    return (
        OpeBidSubmission(user_id=user_id, channel_bids=tuple(channel_bids)),
        SubmissionDisclosure(user_id=user_id, channels=tuple(disclosures)),
    )


def encode_bids_ope(submission: OpeBidSubmission) -> bytes:
    """Serialize: tag | user u32 | n_channels u16 | per channel
    (ope_len u8 | OPE value | ct_len u16 | ct)."""
    parts = [
        OPE_BID_TAG,
        struct.pack(">IH", submission.user_id, len(submission.channel_bids)),
    ]
    for bid in submission.channel_bids:
        parts.append(struct.pack(">B", bid.ope_bytes))
        parts.append(bid.ope_value.to_bytes(bid.ope_bytes, "big"))
        parts.append(struct.pack(">H", len(bid.ciphertext)))
        parts.append(bid.ciphertext)
    return b"".join(parts)


def decode_bids_ope(data: bytes) -> OpeBidSubmission:
    """Strict inverse of :func:`encode_bids_ope`."""
    if len(data) < 1 or data[:1] != OPE_BID_TAG:
        raise CodecError("not an OPE bid payload")
    try:
        if len(data) < 7:
            raise CodecError("truncated OPE bid header")
        user_id, n_channels = struct.unpack(">IH", data[1:7])
        if n_channels < 1:
            raise CodecError("a bid submission must cover at least one channel")
        offset = 7
        channel_bids: List[OpeBid] = []
        for _ in range(n_channels):
            if len(data) < offset + 1:
                raise CodecError("truncated OPE value header")
            ope_bytes = data[offset]
            offset += 1
            if ope_bytes < 1:
                raise CodecError("ope_bytes must be >= 1")
            body = data[offset : offset + ope_bytes]
            if len(body) != ope_bytes:
                raise CodecError("truncated OPE value")
            offset += ope_bytes
            if len(data) < offset + 2:
                raise CodecError("truncated ciphertext header")
            (ct_len,) = struct.unpack(">H", data[offset : offset + 2])
            offset += 2
            ciphertext = data[offset : offset + ct_len]
            if len(ciphertext) != ct_len:
                raise CodecError("truncated ciphertext")
            offset += ct_len
            channel_bids.append(
                OpeBid(
                    ope_value=int.from_bytes(body, "big"),
                    ope_bytes=ope_bytes,
                    ciphertext=ciphertext,
                )
            )
        if offset != len(data):
            raise CodecError("trailing bytes after OPE bid payload")
        return OpeBidSubmission(
            user_id=user_id, channel_bids=tuple(channel_bids)
        )
    except CodecError:
        raise
    except (struct.error, ValueError) as exc:
        raise CodecError(str(exc)) from exc
