"""The cloaking baseline: hide location by coarsening it.

The folk alternative to LPPA is spatial k-anonymity: snap your cell to a
``g x g`` super-cell and submit the super-cell's centre in plaintext.  The
attacker's BCM/BPM are then bounded below by the cloak size — but the
auctioneer's conflict graph is now built from *wrong* coordinates, and a
conflict predicate evaluated on cloaked positions differs from the truth in
both directions:

* **missed conflicts** — two users near a shared super-cell boundary look
  far apart → the allocator hands them the same channel → real-world
  interference (:mod:`repro.auction.interference` counts these);
* **false conflicts** — users snapped to the same centre look co-located →
  reuse opportunities are thrown away → revenue/satisfaction loss.

LPPA's point, made quantitative: its masked conflict graph is *exact*, so
it pays neither cost.  :func:`cloak_cell`/:func:`run_cloaked_auction`
implement the baseline; ``experiments.cloaking_baseline`` prices it.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.auction.bidders import SecondaryUser
from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.auction.outcome import AuctionOutcome
from repro.auction.plain_auction import run_plain_auction
from repro.geo.grid import Cell, GridSpec

__all__ = ["cloak_cell", "cloak_users", "run_cloaked_auction"]


def cloak_cell(cell: Cell, grid: GridSpec, cloak_size: int) -> Cell:
    """Snap a cell to the centre of its ``cloak_size``-sided super-cell."""
    if cloak_size < 1:
        raise ValueError("cloak_size must be >= 1")
    grid.require(cell)
    m = (cell[0] // cloak_size) * cloak_size + cloak_size // 2
    n = (cell[1] // cloak_size) * cloak_size + cloak_size // 2
    return (min(m, grid.rows - 1), min(n, grid.cols - 1))


def cloak_users(
    users: Sequence[SecondaryUser], grid: GridSpec, cloak_size: int
) -> List[Cell]:
    """The cloaked coordinates each user would submit."""
    return [cloak_cell(user.cell, grid, cloak_size) for user in users]


def run_cloaked_auction(
    users: Sequence[SecondaryUser],
    grid: GridSpec,
    rng: random.Random,
    *,
    two_lambda: int,
    cloak_size: int,
) -> Tuple[AuctionOutcome, ConflictGraph]:
    """The baseline auction: plaintext bids, cloaked locations.

    Bids stay plaintext (cloaking defends location only, not price — BPM
    still applies in full), and the conflict graph is built from the
    cloaked cells.  Returns the outcome plus the (approximate) graph so
    callers can audit it against ground truth.
    """
    if not users:
        raise ValueError("need at least one user")
    cloaked = cloak_users(users, grid, cloak_size)
    conflict = build_conflict_graph(cloaked, two_lambda)
    outcome = run_plain_auction(
        users, rng, two_lambda=two_lambda, conflict=conflict
    )
    return outcome, conflict
