"""The privacy-scheme registry: schemes by name, selection by precedence.

One process can host several complete privacy protocols
(:class:`~repro.lppa.schemes.base.PrivacyScheme`); this module is the
single place they are looked up:

* :func:`get_scheme` — name -> scheme instance (``ValueError`` on unknown
  names, listing what *is* registered);
* :func:`resolve_scheme` — the selection precedence every entry point
  shares: explicit argument > CLI-set active scheme > ``$REPRO_SCHEME`` >
  the default ``ppbs``;
* :func:`scheme_for_payload` — wire bytes -> scheme, by the leading
  payload tag byte (each scheme's codecs use a distinct tag).

Registration is *lazy*: the registry module itself imports no scheme, so
``repro.lppa.schemes.registry`` is cycle-free for every protocol layer;
the first lookup imports the :mod:`repro.lppa.schemes` package, whose
``__init__`` registers the built-in schemes.
"""

from __future__ import annotations

import importlib
import os
from typing import Dict, Optional, Tuple

from repro.lppa.schemes.base import PrivacyScheme

__all__ = [
    "SCHEME_ENV",
    "DEFAULT_SCHEME",
    "available_schemes",
    "get_scheme",
    "register",
    "resolve_scheme",
    "scheme_for_payload",
    "set_active_scheme",
]

#: Environment variable selecting the scheme when no argument does.
SCHEME_ENV = "REPRO_SCHEME"

#: The paper's protocol; selecting it is bit-identical to the pre-seam code.
DEFAULT_SCHEME = "ppbs"

_registry: Dict[str, PrivacyScheme] = {}
_active: Optional[str] = None
_builtins_loaded = False


def register(scheme: PrivacyScheme) -> PrivacyScheme:
    """Add one scheme under its ``name``; re-registering a name raises."""
    name = scheme.name
    if not name or name == "abstract":
        raise ValueError("scheme must carry a concrete registry name")
    existing = _registry.get(name)
    if existing is not None and type(existing) is not type(scheme):
        raise ValueError(f"scheme {name!r} already registered")
    _registry[name] = scheme
    return scheme


def _ensure_builtins() -> None:
    # The schemes package registers its members at import time; doing the
    # import here (not at module top) keeps registry <- scheme imports
    # acyclic and makes registration idempotent.
    global _builtins_loaded
    if not _builtins_loaded:
        importlib.import_module("repro.lppa.schemes")
        _builtins_loaded = True


def available_schemes() -> Tuple[str, ...]:
    """Registered scheme names, sorted (the ``--scheme`` choices)."""
    _ensure_builtins()
    return tuple(sorted(_registry))


def get_scheme(name: str) -> PrivacyScheme:
    """Look one scheme up by name."""
    _ensure_builtins()
    scheme = _registry.get(name)
    if scheme is None:
        raise ValueError(
            f"unknown privacy scheme {name!r} "
            f"(registered: {', '.join(sorted(_registry))})"
        )
    return scheme


def set_active_scheme(name: Optional[str]) -> None:
    """Install a process-wide scheme choice (the CLI's ``--scheme`` flag).

    ``None`` clears it.  The active scheme ranks below an explicit
    argument and above ``$REPRO_SCHEME`` in :func:`resolve_scheme`.
    """
    global _active
    if name is not None:
        get_scheme(name)  # validate eagerly: a typo should fail at the flag
    _active = name


def resolve_scheme(name: Optional[str] = None) -> PrivacyScheme:
    """The shared selection rule: argument > active > env > ``ppbs``."""
    if name is not None:
        return get_scheme(name)
    if _active is not None:
        return get_scheme(_active)
    env = os.environ.get(SCHEME_ENV)
    if env:
        return get_scheme(env)
    return get_scheme(DEFAULT_SCHEME)


def scheme_for_payload(data: bytes) -> PrivacyScheme:
    """Which scheme's codec produced this payload, by its leading tag byte."""
    _ensure_builtins()
    if data:
        tag = data[:1]
        for scheme in _registry.values():
            if tag in (scheme.location_tag, scheme.bid_tag):
                return scheme
    raise ValueError(
        f"payload tag {data[:1]!r} matches no registered scheme"
    )
