"""The Bloom scheme: Bloom-filter locations + OPE-ranked bids.

A second complete privacy protocol behind the :class:`PrivacyScheme` seam,
after the Bloom-filter location-privacy line of work (Grissa et al.; see
PAPERS.md):

* **Location phase** — each SU submits a keyed token for its own cell plus
  a Bloom filter over its interference box
  (:mod:`repro.lppa.location_bloom`); the auctioneer's conflict test is one
  filter-membership query per ordered pair instead of PPBS's two
  set-intersections.
* **Bid phase** — each channel bid is the pair (order-preserving encryption
  of the expanded bid, TTP ciphertext) (:mod:`repro.lppa.bids_ope`); the
  auctioneer ranks OPE values directly, no pairwise ``>=`` protocol.
* **Charging** — the TTP decrypts the usual ``gc`` ciphertext and verifies
  consistency by re-encrypting under the channel's OPE key
  (:meth:`repro.lppa.ttp.TrustedThirdParty._decide_ope`).

Because both schemes run the shared
:func:`~repro.lppa.bids_advanced.disguise_and_expand` numeric pipeline on
the same per-bidder rng (before any scheme-specific draws) and OPE is
strictly monotone, the Bloom scheme reproduces PPBS's rankings,
allocations, charges and conflict graph on identical entropy — only the
wire format, crypto-op mix and adversary view differ.  That is exactly
what ``repro compare`` measures.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.auction.allocation import greedy_allocate
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.geo.grid import Cell, GridSpec
from repro.lppa.bids_advanced import BidScale, SubmissionDisclosure
from repro.lppa.bids_ope import (
    OPE_BID_FRAMING,
    OPE_BID_TAG,
    OpeBidSubmission,
    SUBMISSION_FRAMING_BASE,
    decode_bids_ope,
    encode_bids_ope,
    ope_encoder_for,
    submit_bids_ope,
)
from repro.lppa.location_bloom import (
    BLOOM_LOCATION_TAG,
    BloomLocationSubmission,
    LOCATION_FRAMING,
    bloom_params,
    build_bloom_conflict_graph,
    decode_location_bloom,
    encode_location_bloom,
    submit_location_bloom,
    submit_locations_bloom,
)
from repro.lppa.policies import ZeroDisguisePolicy
from repro.lppa.round.backends import TraceMeta, ValueBackend
from repro.lppa.round.results import LppaResult
from repro.lppa.round.state import RoundState
from repro.lppa.round.tables import IntegerMaskedTable
from repro.lppa.schemes.base import PrivacyScheme
from repro.lppa.ttp import ChargeStatus, TrustedThirdParty

__all__ = ["BloomBackend", "BloomScheme", "BLOOM_BACKEND"]


class BloomBackend(ValueBackend):
    """The Bloom protocol's value backend (serial; sharding is PPBS-only)."""

    name = "bloom"

    def setup(self, state: RoundState) -> None:
        if state.scale is None:
            state.ttp, state.keyring, state.scale = TrustedThirdParty.setup(
                state.seed,
                state.n_channels,
                bmax=state.bmax,
                rd=state.rd,
                cr=state.cr,
            )

    def setup_trace(self, state: RoundState) -> Sequence[TraceMeta]:
        scale = state.scale
        keyring = state.keyring
        assert scale is not None and keyring is not None
        assert state.grid is not None
        _, n_bits, n_hashes = bloom_params(state.two_lambda)
        # Per-channel OPE ciphertext widths are deterministic in the keys —
        # the Bloom analogue of Theorem 4's size model; the trace auditor
        # checks every recorded submission against them.
        ope_bytes = [
            ope_encoder_for(keyring.channel_key(r), scale).ciphertext_bytes
            for r in range(state.n_channels)
        ]
        return (
            (
                "protocol_setup",
                "ttp",
                {
                    "scheme": self.name,
                    "n_users": state.n_users,
                    "n_channels": state.n_channels,
                    "bmax": state.bmax,
                    "rd": state.rd,
                    "cr": state.cr,
                    "width": scale.width,
                    "emax": scale.emax,
                    "two_lambda": state.two_lambda,
                    "filter_bits": n_bits,
                    "filter_hashes": n_hashes,
                    "ope_bytes": ope_bytes,
                },
            ),
            (
                "auction_announcement",
                "public",
                {
                    "scheme": self.name,
                    "n_users": state.n_users,
                    "n_channels": state.n_channels,
                    "bmax": state.bmax,
                    "two_lambda": state.two_lambda,
                    "grid_rows": state.grid.rows,
                    "grid_cols": state.grid.cols,
                },
            ),
        )

    def make_locations(self, state: RoundState) -> None:
        assert state.users is not None and state.keyring is not None
        assert state.grid is not None
        state.location_subs = submit_locations_bloom(
            [user.cell for user in state.users],
            state.keyring.g0,
            state.grid,
            state.two_lambda,
        )

    def ingest_locations(self, state: RoundState) -> None:
        assert state.location_subs is not None
        with obs.timer("lppa.conflict_graph"):
            state.conflict = build_bloom_conflict_graph(state.location_subs)
        tr = state.tr
        if tr is not None:
            tr.instant(
                "conflict_graph",
                vis="auctioneer",
                n_users=state.conflict.n_users,
                n_edges=state.conflict.n_edges,
            )
        state.location_bytes = sum(s.wire_bytes() for s in state.location_subs)

    def make_bids(self, state: RoundState) -> None:
        assert state.users is not None and state.user_rngs is not None
        assert state.keyring is not None and state.scale is not None
        assert state.policies is not None
        subs = []
        for idx, user in enumerate(state.users):
            submission, disclosure = submit_bids_ope(
                idx,
                user.bids,
                state.keyring,
                state.scale,
                state.user_rngs[idx],
                policy=state.policies[idx],
            )
            subs.append(submission)
            state.disclosures.append(disclosure)
        state.bid_subs = subs

    def ingest_bids(self, state: RoundState) -> None:
        assert state.bid_subs is not None
        for sub in state.bid_subs:
            if len(sub.channel_bids) != state.n_channels:
                raise ValueError(
                    f"submission covers {len(sub.channel_bids)} channels, "
                    f"expected {state.n_channels}"
                )
        state.bid_bytes = sum(s.wire_bytes() for s in state.bid_subs)

    def allocate(self, state: RoundState) -> None:
        assert state.bid_subs is not None and state.conflict is not None
        assert state.alloc_rng is not None
        # OPE values rank exactly like the masked table (OPE is strictly
        # monotone over the shared expanded values), so the integer table
        # plus the same greedy allocator reproduces the PPBS allocation.
        table = IntegerMaskedTable(
            [[bid.ope_value for bid in sub.channel_bids] for sub in state.bid_subs]
        )
        state.table = table
        state.rankings = table.rankings()
        tr = state.tr
        if tr is not None:
            for channel, classes in enumerate(state.rankings):
                tr.ranking(channel, classes)
                # The curious auctioneer sees the raw OPE column, not just
                # its order — record it for the adversary-replay attacks.
                tr.instant(
                    "ope_column",
                    vis="auctioneer",
                    channel=channel,
                    values=[
                        sub.channel_bids[channel].ope_value
                        for sub in state.bid_subs
                    ],
                )
        state.assignments = greedy_allocate(
            table, state.conflict, state.alloc_rng
        )
        if tr is not None:
            for a in state.assignments:
                tr.instant(
                    "assignment",
                    vis="auctioneer",
                    bidder=a.bidder,
                    channel=a.channel,
                )

    def charge_request(self, state: RoundState) -> Optional[List[Any]]:
        assert state.assignments is not None and state.bid_subs is not None
        return [
            (a.channel, state.bid_subs[a.bidder].channel_bids[a.channel])
            for a in state.assignments
        ]

    def finish_charges(
        self, state: RoundState, decisions: Optional[Sequence[Any]]
    ) -> None:
        assert state.assignments is not None and decisions is not None
        assert state.bid_subs is not None
        if len(decisions) != len(state.assignments):
            raise ValueError(
                f"{len(decisions)} decisions for {len(state.assignments)} "
                "assignments"
            )
        wins = []
        for assignment, decision in zip(state.assignments, decisions):
            if decision.status is ChargeStatus.CHEATING:
                raise RuntimeError(
                    f"TTP flagged bidder {assignment.bidder} on channel "
                    f"{assignment.channel} as cheating"
                )
            wins.append(
                WinRecord(
                    bidder=assignment.bidder,
                    channel=assignment.channel,
                    charge=decision.charge,
                    valid=decision.status is ChargeStatus.VALID,
                )
            )
        state.outcome = AuctionOutcome(
            n_users=len(state.bid_subs), wins=tuple(wins)
        )

    def finalize(self, state: RoundState) -> None:
        assert state.location_subs is not None and state.bid_subs is not None
        assert state.outcome is not None
        framed = sum(
            len(encode_location_bloom(s)) for s in state.location_subs
        ) + sum(len(encode_bids_ope(s)) for s in state.bid_subs)
        state.framed_bytes = framed
        obs.count("lppa.framed_bytes", framed)
        obs.count("lppa.rounds")
        assert state.location_bytes is not None and state.bid_bytes is not None
        assert state.conflict is not None and state.rankings is not None
        state.result = LppaResult(
            outcome=state.outcome,
            conflict_graph=state.conflict,
            rankings=state.rankings,
            disclosures=state.disclosure_tuple(),
            location_bytes=state.location_bytes,
            bid_bytes=state.bid_bytes,
            masked_set_bytes=sum(
                s.ope_material_bytes() for s in state.bid_subs
            ),
            framed_bytes=framed,
        )
        state.round_end_args = {
            "winners": len(state.outcome.wins),
            "framed_bytes": framed,
            "payload_bytes": state.location_bytes + state.bid_bytes,
        }


#: Shared stateless singleton, like CRYPTO_BACKEND / PLAIN_BACKEND.
BLOOM_BACKEND = BloomBackend()


class BloomScheme(PrivacyScheme):
    """Bloom-filter locations + OPE bids, end to end."""

    name = "bloom"
    location_tag = BLOOM_LOCATION_TAG
    bid_tag = OPE_BID_TAG

    @property
    def backend(self) -> ValueBackend:
        return BLOOM_BACKEND

    # -- bidder side ---------------------------------------------------------

    def make_location(
        self,
        user_id: int,
        cell: Cell,
        keyring: Any,
        grid: GridSpec,
        two_lambda: int,
    ) -> BloomLocationSubmission:
        return submit_location_bloom(user_id, cell, keyring.g0, grid, two_lambda)

    def make_bids(
        self,
        user_id: int,
        bids: Any,
        keyring: Any,
        scale: BidScale,
        rng: random.Random,
        *,
        policy: Optional[ZeroDisguisePolicy] = None,
    ) -> Tuple[OpeBidSubmission, SubmissionDisclosure]:
        return submit_bids_ope(user_id, bids, keyring, scale, rng, policy=policy)

    # -- payload codecs ------------------------------------------------------

    def encode_location(self, submission: BloomLocationSubmission) -> bytes:
        return encode_location_bloom(submission)

    def decode_location(self, data: bytes) -> BloomLocationSubmission:
        return decode_location_bloom(data)

    def encode_bids(self, submission: OpeBidSubmission) -> bytes:
        return encode_bids_ope(submission)

    def decode_bids(self, data: bytes) -> OpeBidSubmission:
        return decode_bids_ope(data)

    # -- auctioneer side -----------------------------------------------------

    def conflict_test(
        self, a: BloomLocationSubmission, b: BloomLocationSubmission
    ) -> bool:
        return b.range_filter.contains(a.cell_token)

    # -- auditor hooks -------------------------------------------------------

    def expected_framing(self, kind: str, record: Dict[str, Any]) -> Optional[int]:
        if kind == "location_submission":
            return LOCATION_FRAMING
        if kind == "bid_submission":
            return SUBMISSION_FRAMING_BASE + OPE_BID_FRAMING * int(
                record.get("n_channels") or 0
            )
        if kind == "charge_request":
            return OPE_BID_FRAMING
        return 0

    def audit_bid_round(
        self,
        round_idx: int,
        bid_msgs: Any,
        setup_args: Dict[str, Any],
    ) -> Tuple[Optional[Dict[str, Any]], Tuple[str, ...]]:
        errors: List[str] = []
        width = int(setup_args["width"])
        n_channels = int(setup_args["n_channels"])
        ope_bytes = setup_args.get("ope_bytes")
        if not ope_bytes or len(ope_bytes) != n_channels:
            errors.append(
                f"round {round_idx}: bloom protocol_setup lacks the "
                "per-channel ope_bytes widths — cannot form the size model"
            )
            return None, tuple(errors)
        # The OPE ciphertext width is fixed per channel by the key, so each
        # submission's OPE material is exactly the per-channel sum.
        per_user = 8 * sum(int(b) for b in ope_bytes)
        predicted = float(per_user * len(bid_msgs))
        measured_bits = sum(int(m.get("ope_bytes") or 0) for m in bid_msgs) * 8
        for msg in bid_msgs:
            got = int(msg.get("ope_bytes") or 0) * 8
            if got != per_user:
                errors.append(
                    f"round {round_idx}: su={msg.get('su')} OPE material "
                    f"{got} bits != per-user model {per_user} bits"
                )
        if measured_bits != predicted:
            errors.append(
                f"round {round_idx}: measured OPE bits {measured_bits} != "
                f"size model {predicted} "
                f"(N={len(bid_msgs)}, k={n_channels}, "
                f"ope_bytes={list(ope_bytes)})"
            )
        fields = {
            "n_users": len(bid_msgs),
            "n_channels": n_channels,
            "width": width,
            "digest_bytes": 0,
            "predicted_bits": predicted,
            "measured_masked_bits": measured_bits,
        }
        return fields, tuple(errors)
