"""The ``PrivacyScheme`` seam: what varies between privacy protocols.

The round core fixes *when* things happen (phase pipeline) and the value
backends fix *what the values are* inside one protocol; a
:class:`PrivacyScheme` bundles everything that distinguishes one complete
privacy protocol from another, end to end:

* the **wire message types** and their payload codecs (each scheme's
  payloads carry a distinct leading tag byte, so a strict decoder for one
  scheme rejects another scheme's bytes as malformed);
* the **bidder-side submission encoders** (how a cell and a bid vector
  become privacy-preserving material);
* the **conflict-membership test** the auctioneer runs over two location
  submissions;
* the **value backend** driving the in-process round core;
* the **auditor hooks** the trace auditors use to re-derive framing and
  the scheme's exact bid-material size model (Theorem 4 for PPBS, the OPE
  ciphertext-width model for the Bloom scheme).

Schemes are registered by name (:mod:`repro.lppa.schemes.registry`) and
selected via ``--scheme`` / ``$REPRO_SCHEME`` through the session wrapper,
fastsim, the net server/client and the CLI.  The default scheme is always
``ppbs`` — the paper's protocol — and selecting it is bit-identical to the
pre-seam code path.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.geo.grid import Cell, GridSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crypto.keys import KeyRing
    from repro.lppa.bids_advanced import BidScale, SubmissionDisclosure
    from repro.lppa.policies import ZeroDisguisePolicy
    from repro.lppa.round.backends import ValueBackend

__all__ = ["PrivacyScheme"]


class PrivacyScheme(ABC):
    """One complete location-privacy auction protocol, pluggable by name."""

    #: Registry name (also the ``--scheme`` / ``$REPRO_SCHEME`` spelling).
    name: str = "abstract"

    #: Leading payload tag of this scheme's location submissions.
    location_tag: bytes = b""

    #: Leading payload tag of this scheme's bid submissions.
    bid_tag: bytes = b""

    # -- the round core plug point ------------------------------------------

    @property
    @abstractmethod
    def backend(self) -> "ValueBackend":
        """The value backend the in-process round core runs with."""

    # -- bidder side ---------------------------------------------------------

    @abstractmethod
    def make_location(
        self,
        user_id: int,
        cell: Cell,
        keyring: "KeyRing",
        grid: GridSpec,
        two_lambda: int,
    ) -> Any:
        """Mask one SU's location into this scheme's wire message."""

    @abstractmethod
    def make_bids(
        self,
        user_id: int,
        bids: Any,
        keyring: "KeyRing",
        scale: "BidScale",
        rng: random.Random,
        *,
        policy: Optional["ZeroDisguisePolicy"] = None,
    ) -> Tuple[Any, "SubmissionDisclosure"]:
        """Seal one SU's bid vector; returns (wire message, disclosure)."""

    # -- payload codecs (scheme-tagged, strict) ------------------------------

    @abstractmethod
    def encode_location(self, submission: Any) -> bytes:
        """Serialize a location submission (payload of a LOCATION frame)."""

    @abstractmethod
    def decode_location(self, data: bytes) -> Any:
        """Strict inverse of :meth:`encode_location`; raises
        :class:`repro.lppa.codec.CodecError` on malformed bytes."""

    @abstractmethod
    def encode_bids(self, submission: Any) -> bytes:
        """Serialize a bid submission (payload of a BIDS frame)."""

    @abstractmethod
    def decode_bids(self, data: bytes) -> Any:
        """Strict inverse of :meth:`encode_bids`."""

    # -- auctioneer side -----------------------------------------------------

    @abstractmethod
    def conflict_test(self, a: Any, b: Any) -> bool:
        """Do two location submissions interfere?  Symmetric predicate."""

    # -- announcement --------------------------------------------------------

    def announcement_fields(self) -> Dict[str, Any]:
        """Extra keys the auction announcement (WELCOME) carries.

        The default scheme contributes nothing, which keeps the default
        announcement — and the trace correlation key derived from it —
        byte-identical to the pre-seam protocol.
        """
        return {"scheme": self.name} if self.name != "ppbs" else {}

    # -- auditor hooks -------------------------------------------------------

    @abstractmethod
    def expected_framing(self, kind: str, record: Dict[str, Any]) -> Optional[int]:
        """Framing bytes (wire size minus payload) of one recorded message.

        ``kind`` is the trace message kind (``location_submission``,
        ``bid_submission``, ``charge_request``, ``charge_decision``);
        ``record`` the trace event.  ``None`` means the scheme makes no
        framing claim for this kind (the auditor then skips the check).
        """

    @abstractmethod
    def audit_bid_round(
        self,
        round_idx: int,
        bid_msgs: Any,
        setup_args: Dict[str, Any],
    ) -> Tuple[Optional[Dict[str, Any]], Tuple[str, ...]]:
        """Check one round's recorded bid submissions against the scheme's
        exact size model (Theorem 4 for PPBS; the fixed OPE ciphertext
        width for the Bloom scheme).

        Returns ``(fields, errors)`` where ``fields`` carries the
        per-round audit numbers (``n_users``, ``n_channels``, ``width``,
        ``digest_bytes``, ``predicted_bits``, ``measured_masked_bits``)
        or ``None`` when the round cannot be audited, and ``errors`` the
        divergence strings.  The trace auditor
        (:func:`repro.analysis.trace_audit.audit_comm_cost`) supplies the
        byte totals and wraps the fields into its report rows.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PrivacyScheme {self.name}>"
