"""Pluggable privacy schemes (:class:`~repro.lppa.schemes.base.PrivacyScheme`).

Importing this package registers the built-in schemes:

* ``ppbs`` — the paper's protocol (prefix-masked locations and bids);
  always the default, bit-identical to the pre-seam code path.
* ``bloom`` — Bloom-filter locations + order-preserving-encrypted bids.

Selection runs through :mod:`repro.lppa.schemes.registry`
(``--scheme`` / ``$REPRO_SCHEME`` / explicit argument).
"""

from __future__ import annotations

from repro.lppa.schemes.base import PrivacyScheme
from repro.lppa.schemes.bloom import BloomScheme
from repro.lppa.schemes.ppbs import PpbsScheme
from repro.lppa.schemes.registry import (
    DEFAULT_SCHEME,
    SCHEME_ENV,
    available_schemes,
    get_scheme,
    register,
    resolve_scheme,
    scheme_for_payload,
    set_active_scheme,
)

__all__ = [
    "DEFAULT_SCHEME",
    "SCHEME_ENV",
    "BloomScheme",
    "PpbsScheme",
    "PrivacyScheme",
    "available_schemes",
    "get_scheme",
    "register",
    "resolve_scheme",
    "scheme_for_payload",
    "set_active_scheme",
]

register(PpbsScheme())
register(BloomScheme())
