"""PPBS — the paper's protocol, packaged as a :class:`PrivacyScheme`.

This is a *pure re-seam*: every method delegates to the exact functions
the pre-scheme code path called (`submit_location`, `submit_bids_advanced`,
the strict codec in :mod:`repro.lppa.codec`, the crypto value backend),
so selecting ``ppbs`` — the default — is bit-identical to the historical
pipeline.  The differential suite in ``tests/schemes`` pins that claim
against goldens captured from the pre-refactor tree.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.comm_cost import predicted_bid_bits
from repro.geo.grid import Cell, GridSpec
from repro.lppa import codec
from repro.lppa.bids_advanced import BidScale, SubmissionDisclosure, submit_bids_advanced
from repro.lppa.location import submit_location
from repro.lppa.messages import BidSubmission, LocationSubmission
from repro.lppa.policies import ZeroDisguisePolicy
from repro.lppa.round.backends import CRYPTO_BACKEND, ValueBackend
from repro.lppa.schemes.base import PrivacyScheme
from repro.prefix.membership import is_member

__all__ = ["PpbsScheme"]

# Framing (wire size minus payload) per message kind — the same arithmetic
# repro.lppa.messages/codec encode: tag + four set headers for a location;
# tag + channel count, plus two set headers + a ciphertext length per
# channel, for bids; two set headers + ciphertext length for the masked
# bid inside a charge request; none for the fixed-size charge decision.
_LOCATION_FRAMING = 1 + 4 * 3
_BID_FRAMING_BASE = 1 + 2
_BID_FRAMING_PER_CHANNEL = 2 * 3 + 2
_CHARGE_REQUEST_FRAMING = 2 * 3 + 2
_CHARGE_DECISION_FRAMING = 0


class PpbsScheme(PrivacyScheme):
    """Prefix-membership masking end to end (sections IV-V of the paper)."""

    name = "ppbs"
    location_tag = b"L"
    bid_tag = b"B"

    @property
    def backend(self) -> ValueBackend:
        return CRYPTO_BACKEND

    # -- bidder side ---------------------------------------------------------

    def make_location(
        self,
        user_id: int,
        cell: Cell,
        keyring: Any,
        grid: GridSpec,
        two_lambda: int,
    ) -> LocationSubmission:
        return submit_location(user_id, cell, keyring.g0, grid, two_lambda)

    def make_bids(
        self,
        user_id: int,
        bids: Any,
        keyring: Any,
        scale: BidScale,
        rng: random.Random,
        *,
        policy: Optional[ZeroDisguisePolicy] = None,
    ) -> Tuple[BidSubmission, SubmissionDisclosure]:
        return submit_bids_advanced(
            user_id, bids, keyring, scale, rng, policy=policy
        )

    # -- payload codecs ------------------------------------------------------

    def encode_location(self, submission: LocationSubmission) -> bytes:
        return codec.encode_location(submission)

    def decode_location(self, data: bytes) -> LocationSubmission:
        return codec.decode_location(data)

    def encode_bids(self, submission: BidSubmission) -> bytes:
        return codec.encode_bids(submission)

    def decode_bids(self, data: bytes) -> BidSubmission:
        return codec.decode_bids(data)

    # -- auctioneer side -----------------------------------------------------

    def conflict_test(self, a: LocationSubmission, b: LocationSubmission) -> bool:
        return is_member(a.x_family, b.x_range) and is_member(
            a.y_family, b.y_range
        )

    # -- auditor hooks -------------------------------------------------------

    def expected_framing(self, kind: str, record: Dict[str, Any]) -> Optional[int]:
        if kind == "location_submission":
            return _LOCATION_FRAMING
        if kind == "bid_submission":
            return _BID_FRAMING_BASE + _BID_FRAMING_PER_CHANNEL * int(
                record.get("n_channels") or 0
            )
        if kind == "charge_request":
            return _CHARGE_REQUEST_FRAMING
        return _CHARGE_DECISION_FRAMING

    def audit_bid_round(
        self,
        round_idx: int,
        bid_msgs: Any,
        setup_args: Dict[str, Any],
    ) -> Tuple[Optional[Dict[str, Any]], Tuple[str, ...]]:
        errors: List[str] = []
        width = int(setup_args["width"])
        n_channels = int(setup_args["n_channels"])
        digest_values = {int(m.get("digest_bytes") or 0) for m in bid_msgs}
        if len(digest_values) != 1:
            errors.append(
                f"round {round_idx}: inconsistent digest_bytes across bid "
                f"submissions: {sorted(digest_values)}"
            )
            return None, tuple(errors)
        digest_bytes = digest_values.pop()
        measured_bits = sum(int(m.get("masked_set_bytes") or 0) for m in bid_msgs) * 8
        predicted = predicted_bid_bits(len(bid_msgs), n_channels, width, digest_bytes)

        # Per-message exactness first: every submission is deterministically
        # padded to (3w - 1) digests per channel, so each must match alone.
        per_user = predicted / len(bid_msgs)
        for msg in bid_msgs:
            got = int(msg.get("masked_set_bytes") or 0) * 8
            if got != per_user:
                errors.append(
                    f"round {round_idx}: su={msg.get('su')} masked material "
                    f"{got} bits != Theorem 4 per-user {per_user} bits"
                )
        if measured_bits != predicted:
            errors.append(
                f"round {round_idx}: measured masked bits {measured_bits} != "
                f"Theorem 4 prediction {predicted} "
                f"(N={len(bid_msgs)}, k={n_channels}, w={width}, "
                f"digest_bytes={digest_bytes})"
            )
        fields = {
            "n_users": len(bid_msgs),
            "n_channels": n_channels,
            "width": width,
            "digest_bytes": digest_bytes,
            "predicted_bits": predicted,
            "measured_masked_bits": measured_bits,
        }
        return fields, tuple(errors)
