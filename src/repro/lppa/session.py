"""End-to-end orchestration of one LPPA auction round.

:func:`run_lppa_auction` is the single call the examples and the experiment
harness build on.  It is a thin wrapper over the round core
(:mod:`repro.lppa.round`): the crypto value backend plays every protocol
role in-process —

1. TTP setup — keys, ``rd``, ``cr``, bid scale (:class:`TrustedThirdParty`);
2. bidders — masked location submissions and advanced bid submissions;
3. auctioneer — private conflict graph, masked allocation;
4. TTP charging — batched decryption/verification;
5. bookkeeping — communication-cost accounting and the attacker-facing
   views (per-channel bid rankings) used by the evaluation.

This module owns only the call-signature conveniences (entropy/rng
resolution, the shared default policy) and re-exports
:class:`~repro.lppa.round.results.LppaResult` from its historical home.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.obs import trace
from repro.auction.bidders import SecondaryUser
from repro.geo.grid import GridSpec
from repro.lppa.entropy import derive_round_rngs
from repro.lppa.policies import KeepZeroPolicy, ZeroDisguisePolicy
from repro.lppa.round import (
    IN_PROCESS_DRIVER,
    LppaResult,
    RoundState,
    execute_round,
)
from repro.lppa.round.sharding import resolve_shards
from repro.lppa.schemes.registry import resolve_scheme
from repro.utils.rng import Seed, fresh_rng

__all__ = ["LppaResult", "run_lppa_auction"]


def run_lppa_auction(
    users: Sequence[SecondaryUser],
    grid: GridSpec,
    *,
    two_lambda: int,
    bmax: int,
    seed: bytes = b"lppa-session",
    rd: int = 4,
    cr: int = 8,
    policy: Optional[ZeroDisguisePolicy] = None,
    rng: Optional[random.Random] = None,
    entropy: Optional[Seed] = None,
    shards: Optional[int] = None,
    scheme: Optional[str] = None,
) -> LppaResult:
    """One complete private auction round.

    Parameters
    ----------
    users:
        The bidder population (their cells/bids stay on the SU side; only
        masked material reaches the auctioneer).
    grid:
        The area's cell lattice (defines coordinate bit widths).
    two_lambda:
        Interference-square side in cells.
    bmax:
        Public upper bound on original bid values.
    seed, rd, cr:
        TTP setup parameters.
    policy:
        Zero-disguise policy shared by all users this round (defaults to no
        disguise); per-user policies are possible by calling the submission
        layer directly.
    rng:
        Randomness for expansion offsets, disguises, nonce generation and
        the allocation's channel/tie choices.
    entropy:
        Label-addressed seeding (overrides ``rng``): derives one stream per
        bidder plus an allocation stream via
        :func:`repro.lppa.entropy.derive_round_rngs`, so the round's
        conflict graph, rankings, allocations and charges are identical to
        a :func:`repro.lppa.fastsim.run_fast_lppa` run with the same
        ``entropy`` — the enforced fastsim equivalence contract.
    shards:
        Scale mode (argument, else ``REPRO_SHARDS``, else off): the
        expensive phases run through the grid-bucket prefilter and the
        sharded executors of :mod:`repro.lppa.round.sharding` — serially
        in-process at 1, over that many worker processes at >= 2.  Results
        are bit-identical to the default path at any shard count.
    scheme:
        Privacy scheme name (argument, else the CLI-set active scheme, else
        ``$REPRO_SCHEME``, else ``ppbs``).  ``ppbs`` runs the paper's
        protocol bit-identically to the historical code path; ``bloom``
        runs Bloom-filter locations + OPE bids end to end.
    """
    if not users:
        raise ValueError("need at least one user")
    n_channels = users[0].n_channels
    if any(u.n_channels != n_channels for u in users):
        raise ValueError("all users must bid over the same channel set")
    if entropy is not None:
        user_rngs, alloc_rng = derive_round_rngs(entropy, len(users))
    else:
        if rng is None:
            rng = fresh_rng()
        user_rngs = [rng] * len(users)
        alloc_rng = rng
    if policy is None:
        policy = KeepZeroPolicy()

    state = RoundState(
        backend=resolve_scheme(scheme).backend,
        driver=IN_PROCESS_DRIVER,
        n_users=len(users),
        n_channels=n_channels,
        two_lambda=two_lambda,
        bmax=bmax,
        rd=rd,
        cr=cr,
        seed=seed,
        grid=grid,
        users=users,
        user_rngs=user_rngs,
        alloc_rng=alloc_rng,
        policies=[policy] * len(users),
        tr=trace.get_active(),
        shards=resolve_shards(shards),
    )
    execute_round(state)
    result: LppaResult = state.result
    return result
