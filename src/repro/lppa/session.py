"""End-to-end orchestration of one LPPA auction round.

Wires together every protocol role:

1. TTP setup — keys, ``rd``, ``cr``, bid scale (:class:`TrustedThirdParty`);
2. bidders — masked location submissions and advanced bid submissions;
3. auctioneer — private conflict graph, masked allocation;
4. TTP charging — batched decryption/verification;
5. bookkeeping — communication-cost accounting and the attacker-facing
   views (per-channel bid rankings) used by the evaluation.

:func:`run_lppa_auction` is the single call the examples and the experiment
harness build on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import trace
from repro.auction.bidders import SecondaryUser
from repro.auction.conflict import ConflictGraph
from repro.auction.outcome import AuctionOutcome
from repro.crypto.keys import KeyRing
from repro.geo.grid import GridSpec
from repro.lppa.auctioneer import Auctioneer
from repro.lppa.codec import encode_bids, encode_location
from repro.lppa.bids_advanced import (
    BidScale,
    SubmissionDisclosure,
    submit_bids_advanced,
)
from repro.lppa.location import submit_location
from repro.lppa.messages import BidSubmission, LocationSubmission
from repro.lppa.fastsim import derive_round_rngs
from repro.lppa.policies import KeepZeroPolicy, ZeroDisguisePolicy
from repro.lppa.ttp import TrustedThirdParty
from repro.utils.rng import Seed, fresh_rng

__all__ = ["LppaResult", "run_lppa_auction"]


@dataclass(frozen=True)
class LppaResult:
    """Everything one protocol round produced."""

    outcome: AuctionOutcome
    conflict_graph: ConflictGraph
    rankings: List[List[List[int]]]
    disclosures: Tuple[SubmissionDisclosure, ...]
    location_bytes: int
    bid_bytes: int
    masked_set_bytes: int
    framed_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Payload bytes (what Theorem 4's accounting models)."""
        return self.location_bytes + self.bid_bytes


def run_lppa_auction(
    users: Sequence[SecondaryUser],
    grid: GridSpec,
    *,
    two_lambda: int,
    bmax: int,
    seed: bytes = b"lppa-session",
    rd: int = 4,
    cr: int = 8,
    policy: Optional[ZeroDisguisePolicy] = None,
    rng: Optional[random.Random] = None,
    entropy: Optional[Seed] = None,
) -> LppaResult:
    """One complete private auction round.

    Parameters
    ----------
    users:
        The bidder population (their cells/bids stay on the SU side; only
        masked material reaches the auctioneer).
    grid:
        The area's cell lattice (defines coordinate bit widths).
    two_lambda:
        Interference-square side in cells.
    bmax:
        Public upper bound on original bid values.
    seed, rd, cr:
        TTP setup parameters.
    policy:
        Zero-disguise policy shared by all users this round (defaults to no
        disguise); per-user policies are possible by calling the submission
        layer directly.
    rng:
        Randomness for expansion offsets, disguises, nonce generation and
        the allocation's channel/tie choices.
    entropy:
        Label-addressed seeding (overrides ``rng``): derives one stream per
        bidder plus an allocation stream via
        :func:`repro.lppa.fastsim.derive_round_rngs`, so the round's
        conflict graph, rankings, allocations and charges are identical to
        a :func:`repro.lppa.fastsim.run_fast_lppa` run with the same
        ``entropy`` — the enforced fastsim equivalence contract.
    """
    if not users:
        raise ValueError("need at least one user")
    n_channels = users[0].n_channels
    if any(u.n_channels != n_channels for u in users):
        raise ValueError("all users must bid over the same channel set")
    if entropy is not None:
        user_rngs, alloc_rng = derive_round_rngs(entropy, len(users))
    else:
        if rng is None:
            rng = fresh_rng()
        user_rngs = [rng] * len(users)
        alloc_rng = rng
    if policy is None:
        policy = KeepZeroPolicy()

    ttp, keyring, scale = TrustedThirdParty.setup(
        seed, n_channels, bmax=bmax, rd=rd, cr=cr
    )
    auctioneer = Auctioneer(n_channels)

    # Phase metrics: wall time per protocol phase plus the byte counters
    # Theorem 4 accounts for, recorded only while repro.obs is collecting.
    # Splitting the bidder loop per phase is draw-order neutral: location
    # submission consumes no randomness, so the bid submissions see the
    # same RNG stream(s) as the previous interleaved loop.
    #
    # The flight recorder (repro.obs.trace) additionally gets one event per
    # wire message; every emission sits behind a `tr is not None` guard so
    # the disabled path stays a single comparison.
    tr = trace.get_active()
    if tr is not None:
        tr.round_begin()
        # rd/cr/width are hidden from the auctioneer (only bidders and the
        # TTP hold them); the announcement is what everyone sees.
        tr.meta(
            "protocol_setup",
            vis="ttp",
            n_users=len(users),
            n_channels=n_channels,
            bmax=bmax,
            rd=rd,
            cr=cr,
            width=scale.width,
            emax=scale.emax,
            two_lambda=two_lambda,
        )
        tr.meta(
            "auction_announcement",
            vis="public",
            n_users=len(users),
            n_channels=n_channels,
            bmax=bmax,
            two_lambda=two_lambda,
            grid_rows=grid.rows,
            grid_cols=grid.cols,
        )

    # --- Location submission (bidders mask, auctioneer builds the graph) ---------
    with obs.phase("location_submission"):
        location_subs: List[LocationSubmission] = [
            submit_location(idx, user.cell, keyring.g0, grid, two_lambda)
            for idx, user in enumerate(users)
        ]
        if tr is not None:
            for sub in location_subs:
                tr.message(
                    "location_submission",
                    su=sub.user_id,
                    payload_bytes=sub.wire_bytes(),
                    wire_size=sub.wire_size(),
                    digest_bytes=sub.x_family.digest_bytes,
                )
        conflict = auctioneer.receive_locations(location_subs)
        location_bytes = sum(s.wire_bytes() for s in location_subs)
        obs.count("lppa.location_submissions", len(location_subs))
        obs.count("lppa.location_bytes", location_bytes)

    # --- Bid submission ----------------------------------------------------------
    with obs.phase("bid_submission"):
        bid_subs: List[BidSubmission] = []
        disclosures: List[SubmissionDisclosure] = []
        for idx, user in enumerate(users):
            submission, disclosure = submit_bids_advanced(
                idx, user.bids, keyring, scale, user_rngs[idx], policy=policy
            )
            bid_subs.append(submission)
            disclosures.append(disclosure)
        if tr is not None:
            for sub in bid_subs:
                tr.message(
                    "bid_submission",
                    su=sub.user_id,
                    payload_bytes=sub.wire_bytes(),
                    wire_size=sub.wire_size(),
                    masked_set_bytes=sub.masked_set_bytes(),
                    n_channels=sub.n_channels,
                    digest_bytes=sub.channel_bids[0].family.digest_bytes,
                )
        auctioneer.receive_bids(bid_subs)
        bid_bytes = sum(s.wire_bytes() for s in bid_subs)
        obs.count("lppa.bid_submissions", len(bid_subs))
        obs.count("lppa.bid_bytes", bid_bytes)

    # --- PSD allocation ----------------------------------------------------------
    with obs.phase("psd_allocation"):
        rankings = auctioneer.channel_rankings()
        auctioneer.run_allocation(alloc_rng)

    # --- TTP charging ------------------------------------------------------------
    with obs.phase("ttp_charging"):
        outcome = auctioneer.charge_winners(ttp, n_users=len(users))

    # Actual serialized sizes through the wire codec (payload + framing);
    # encoding also exercises the round-trip invariants in production runs.
    framed = sum(
        len(encode_location(s)) for s in location_subs
    ) + sum(len(encode_bids(s)) for s in bid_subs)
    obs.count("lppa.framed_bytes", framed)
    obs.count("lppa.rounds")
    if tr is not None:
        tr.round_end(
            winners=len(outcome.wins),
            framed_bytes=framed,
            payload_bytes=location_bytes + bid_bytes,
        )

    return LppaResult(
        outcome=outcome,
        conflict_graph=conflict,
        rankings=rankings,
        disclosures=tuple(disclosures),
        location_bytes=location_bytes,
        bid_bytes=bid_bytes,
        masked_set_bytes=sum(s.masked_set_bytes() for s in bid_subs),
        framed_bytes=framed,
    )
