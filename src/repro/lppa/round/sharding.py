"""Sharded execution of the round core's expensive phases.

A single-process LPPA round is compute-bound in three places once the
population leaves the paper's 100-SU regime:

* **conflict-graph construction** — Θ(N²) masked membership tests;
* **bidder-side synthesis** — per-SU location/bid masking (embarrassingly
  parallel: each SU's material is a pure function of its own inputs);
* **psd rankings** — per-channel O(N log N) masked comparisons.

This module shards all three across worker processes through the PR-1
process-pool engine (:func:`repro.experiments.engine.run_sweep`) and prunes
the conflict phase with the grid-bucket spatial prefilter
(:mod:`repro.geo.buckets`), so only plausibly co-located SU pairs are
tested at all.

Determinism contract
--------------------
Sharding must be invisible in the results: a sharded round is required to
be **bit-identical** to the single-process path at any shard count.  Three
properties deliver that, and the differential tests pin each one:

* *no randomness in sharded work unless label-addressed* — location masking
  consumes no RNG at all; bid synthesis draws only from the per-SU streams
  of :func:`repro.lppa.entropy.derive_round_rngs`, which are independent by
  construction, so executing SU ``i``'s draws in another process cannot
  perturb SU ``j``'s.  When a round runs with one *shared* RNG (the
  legacy ``rng=`` path), bid synthesis stays serial in the parent — the
  draw interleaving is the contract there, and only a single stream can
  honour it;
* *order-preserving reassembly* — every fan-out partitions work into
  contiguous, deterministic chunks (``shard_slices`` / pair chunks in
  candidate order) and ``run_sweep`` returns results in submission order,
  so concatenation reproduces the serial iteration order exactly;
* *shared kernels* — workers run the same functions the serial path runs
  (:func:`~repro.lppa.location.submit_locations`,
  :func:`~repro.prefix.membership.is_member`,
  :func:`~repro.lppa.psd.rank_masked_column` /
  :func:`~repro.lppa.round.tables.rank_integer_column`), so a verdict
  computed remotely is the same bytes-in/bytes-out computation.

Shipping the inputs: the fork stash
-----------------------------------
Masked submissions and bid-table columns are large; pickling them into
every task would swamp the fan-out's win (measured: a 10k-SU conflict
sweep spends multiples of its compute time serialising masked sets).  The
engine prefers the ``fork`` start method, under which workers inherit the
parent's memory copy-on-write — so each phase front-end parks its bulky
read-only inputs in a module-level **stash** (:func:`_stashed`) and hands
workers only slice indices.  Task functions read the stash via
:func:`_stash`, which raises in a process that did not inherit it (a
``spawn``-start worker); the engine treats that like any other worker
failure and re-runs the sweep serially in the parent, where the stash is
always present — slower, still bit-identical.

Worker-side telemetry is *not* lost: when the parent has an active
:mod:`repro.obs` registry or flight recorder at fan-out time, every task
runs under a fresh worker-local registry + recorder
(:func:`_run_instrumented`) and ships a picklable rollup — counters,
timers (including a per-task ``<sweep>.worker`` wall timer), histograms
and any buffered trace events — back through the ordinary task result.
The front-ends fold counters/timers/histograms into the parent registry
*inside the still-open parent phase scope*, so sharded scoped keys and
totals match the serial path's exactly; worker trace events land in a
separate module-level buffer (:func:`drain_worker_events`) and are never
folded into the parent recorder, so the parent's trace stream — which the
differential trace-equality tests pin across shard counts — is untouched.
Gauges are deliberately not folded: last-write-wins has no cross-process
meaning.

``shards`` semantics: ``None`` (default) is the legacy single-process path,
byte-for-byte untouched.  ``1`` enables *scale mode* (prefilter on, fan-out
code paths active) but runs every chunk serially in the parent — no pool is
ever spawned.  ``>= 2`` fans chunks over that many worker processes.
"""

from __future__ import annotations

import collections
import contextlib
import os
from dataclasses import replace
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.obs import trace
from repro.obs.clock import Stopwatch
from repro.obs.hist import Histogram
from repro.obs.registry import MetricsRegistry
from repro.auction.conflict import ConflictGraph, cells_conflict
from repro.geo.buckets import candidate_pairs
from repro.geo.grid import Cell
from repro.lppa.bids_advanced import SubmissionDisclosure, submit_bids_advanced
from repro.lppa.location import submit_locations
from repro.lppa.messages import BidSubmission, LocationSubmission
from repro.lppa.psd import MaskedBidTable, rank_masked_column
from repro.lppa.round.state import RoundState
from repro.lppa.round.tables import IntegerMaskedTable, rank_integer_column
from repro.prefix.membership import is_member

__all__ = [
    "SHARDS_ENV",
    "WORKER_EVENT_CAPACITY",
    "resolve_shards",
    "shard_slices",
    "chunk_pairs",
    "independent_user_rngs",
    "drain_worker_events",
    "sharded_location_submissions",
    "sharded_bid_submissions",
    "sharded_conflict_edges",
    "sharded_plain_conflict",
    "sharded_masked_rankings",
    "sharded_integer_rankings",
]

#: Environment variable consulted when no explicit shard count is given.
SHARDS_ENV = "REPRO_SHARDS"

#: Ring-buffer capacity of each worker-local flight recorder.
WORKER_EVENT_CAPACITY = 4096


def run_sweep(*args, **kwargs):
    """Late-bound :func:`repro.experiments.engine.run_sweep`.

    Imported at call time: the experiments package's ``__init__`` imports
    the fastsim wrapper, which imports this package — a module-level import
    here would close that cycle during interpreter start-up.
    """
    from repro.experiments.engine import run_sweep as _run_sweep

    return _run_sweep(*args, **kwargs)


def resolve_shards(shards: Optional[int] = None) -> Optional[int]:
    """The effective shard count: argument, else ``REPRO_SHARDS``, else None.

    ``None`` means "legacy single-process path" — not one shard.  A shard
    count of 1 runs the scale-mode code (spatial prefilter, chunked phase
    functions) serially in the parent, which is the cheapest way to get the
    prefilter's algorithmic win without any process machinery.
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        if not raw:
            return None
        try:
            shards = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{SHARDS_ENV} must be a positive integer, got {raw!r}"
            ) from exc
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return shards


def shard_slices(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` slices covering ``range(n)``.

    Sizes differ by at most one, larger slices first; empty slices are
    dropped, so ``shards > n`` degrades to ``n`` singleton slices.  The
    partition is a pure function of ``(n, shards)`` — workers can be handed
    a slice id and nothing else and still agree on the split.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if n < 0:
        raise ValueError(f"cannot slice {n} items")
    base, extra = divmod(n, shards)
    slices: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        slices.append((start, start + size))
        start += size
    return slices


def chunk_pairs(
    pairs: Sequence[Tuple[int, int]], shards: int
) -> List[Sequence[Tuple[int, int]]]:
    """Split a pair list into at most ``shards`` contiguous chunks."""
    return [pairs[start:stop] for start, stop in shard_slices(len(pairs), shards)]


# -- the fork stash -----------------------------------------------------------

_STASH: Optional[Dict[str, Any]] = None


@contextlib.contextmanager
def _stashed(**data: Any) -> Iterator[None]:
    """Park bulky read-only task inputs for the duration of one fan-out.

    Fork-started workers inherit the stash copy-on-write; serial execution
    (``shards=1`` or the engine's fallback) reads it directly from the
    parent.  Restores the previous stash on exit so nested fan-outs cannot
    clobber each other.
    """
    global _STASH
    previous = _STASH
    _STASH = data
    try:
        yield
    finally:
        _STASH = previous


def _stash(key: str) -> Any:
    stash = _STASH
    if stash is None:
        # A spawn-started worker re-imported this module and never inherited
        # the stash.  Raising here makes the engine fall back to serial
        # execution in the parent, where the stash is always set.
        raise RuntimeError(
            "shard stash not inherited by this worker (non-fork start "
            "method); the sweep engine will re-run serially in the parent"
        )
    return stash[key]


# -- worker telemetry ---------------------------------------------------------

#: Worker trace events shipped back by rollups, awaiting :func:`drain_worker_events`.
_worker_events: Deque[Dict[str, Any]] = collections.deque(maxlen=1 << 16)

#: A picklable worker-side telemetry rollup (see :func:`_run_instrumented`).
Rollup = Dict[str, Any]


def _telemetry_spec(name: str) -> Optional[Dict[str, str]]:
    """The per-fan-out telemetry instruction parked in the stash.

    ``None`` — the common case, nothing collecting in the parent — keeps
    every task on the zero-overhead path; otherwise the task knows which
    sweep it serves so its wall timer lands on ``<name>.worker``.
    """
    if obs.get_active() is None and trace.get_active() is None:
        return None
    return {"name": name}


def _run_instrumented(
    spec: Optional[Dict[str, str]], work: Callable[[], Any]
) -> Tuple[Any, Optional[Rollup]]:
    """Run one task body, capturing its telemetry when the parent asked.

    A fresh worker-local registry and flight recorder shadow whatever the
    process inherited (fork copies the parent's active registry — counting
    into that copy would be silently lost; in serial execution it *is* the
    parent's registry, and counting into it directly would bypass the fold
    and double-apply the parent phase scope).  Everything recorded travels
    home as a plain-dict rollup in the task result.
    """
    if spec is None:
        return work(), None
    registry = MetricsRegistry()
    recorder = trace.TraceRecorder(capacity=WORKER_EVENT_CAPACITY)
    recorder.set_correlation(role="shard-worker")
    watch = Stopwatch()
    with obs.collecting(registry, trace=recorder):
        payload = work()
    registry.record_raw_seconds(f"{spec['name']}.worker", watch.elapsed())
    rollup: Rollup = {
        "counters": registry.counters,
        "timers": {k: t.as_dict() for k, t in registry.timers.items()},
        "histograms": {k: h.as_dict() for k, h in registry.histograms.items()},
        "events": recorder.events(),
    }
    return payload, rollup


def _fold_rollups(rollups: Sequence[Optional[Rollup]]) -> None:
    """Fold worker rollups into the parent's registry and event buffer.

    Must run inside the same parent phase scope the serial path would
    record under: ``count``/``record_seconds`` re-apply the current scope,
    so a worker's bare ``prefix.membership_checks`` lands on exactly the
    scoped key the single-process round uses.  Trace events are *buffered*,
    never folded into the parent recorder — the parent's stream must stay
    identical at every shard count.
    """
    registry = obs.get_active()
    for rollup in rollups:
        if rollup is None:
            continue
        if registry is not None:
            for key, value in rollup["counters"].items():
                registry.count(key, value)
            for key, stat in rollup["timers"].items():
                registry.record_seconds(
                    key, stat["seconds"], int(stat["count"])
                )
            path = registry.phase_path()
            for key, payload in rollup["histograms"].items():
                scoped = f"{path}/{key}" if path else key
                registry.merge_histogram_raw(scoped, Histogram.from_dict(payload))
        _worker_events.extend(rollup["events"])


def _split_results(
    results: Sequence[Tuple[Any, Optional[Rollup]]]
) -> List[Any]:
    """Fold the telemetry halves; return the payload halves in order."""
    _fold_rollups([rollup for _, rollup in results])
    return [payload for payload, _ in results]


def drain_worker_events() -> List[Dict[str, Any]]:
    """Remove and return every buffered worker trace event (oldest first).

    ``repro trace merge`` treats the returned list as one extra source;
    events carry ``role="shard-worker"`` but no session (workers never see
    the WELCOME announcement — stamp one before merging if desired).
    """
    events = list(_worker_events)
    _worker_events.clear()
    return events


# -- worker tasks (module-level: picklable by reference) ----------------------


def _location_task(
    spec: Tuple[int, int]
) -> Tuple[List[LocationSubmission], Optional[Rollup]]:
    """Mask one contiguous slice of the population's locations.

    Masking consumes no randomness, so the digests are a pure function of
    the cells — only the dense user ids need re-basing onto the slice
    offset.
    """
    start, stop = spec

    def work() -> List[LocationSubmission]:
        cells: Sequence[Cell] = _stash("cells")
        subs = submit_locations(
            cells[start:stop], _stash("g0"), _stash("grid"), _stash("two_lambda")
        )
        return [replace(sub, user_id=start + sub.user_id) for sub in subs]

    return _run_instrumented(_stash("telemetry"), work)


def _bid_task(
    spec: Tuple[int, int]
) -> Tuple[
    Tuple[List[BidSubmission], List[SubmissionDisclosure]], Optional[Rollup]
]:
    """Synthesize one contiguous slice of bid submissions.

    Each SU draws exclusively from its own RNG stream, so the draws made
    here are byte-identical to the ones the serial loop would make for the
    same users — stream independence is the whole contract.  In a forked
    worker the streams are copy-on-write copies; in serial execution they
    are the parent's own objects, advancing exactly as the legacy loop
    would advance them.
    """
    start, stop = spec

    def work() -> Tuple[List[BidSubmission], List[SubmissionDisclosure]]:
        bid_rows = _stash("bid_rows")
        keyring = _stash("keyring")
        scale = _stash("scale")
        rngs = _stash("rngs")
        policies = _stash("policies")
        subs: List[BidSubmission] = []
        disclosures: List[SubmissionDisclosure] = []
        for user in range(start, stop):
            submission, disclosure = submit_bids_advanced(
                user, bid_rows[user], keyring, scale, rngs[user],
                policy=policies[user],
            )
            subs.append(submission)
            disclosures.append(disclosure)
        return subs, disclosures

    return _run_instrumented(_stash("telemetry"), work)


def _masked_pair_task(
    spec: Tuple[int, int]
) -> Tuple[List[Tuple[int, int]], Optional[Rollup]]:
    """Decide one slice of candidate pairs by masked membership tests."""
    start, stop = spec

    def work() -> List[Tuple[int, int]]:
        pairs: Sequence[Tuple[int, int]] = _stash("pairs")
        subs: Sequence[LocationSubmission] = _stash("subs")
        edges: List[Tuple[int, int]] = []
        for i, j in pairs[start:stop]:
            a, b = subs[i], subs[j]
            if is_member(a.x_family, b.x_range) and is_member(a.y_family, b.y_range):
                edges.append((i, j))
        return edges

    return _run_instrumented(_stash("telemetry"), work)


def _plain_pair_task(
    spec: Tuple[int, int]
) -> Tuple[List[Tuple[int, int]], Optional[Rollup]]:
    """Decide one slice of candidate pairs on plaintext cells."""
    start, stop = spec

    def work() -> List[Tuple[int, int]]:
        pairs: Sequence[Tuple[int, int]] = _stash("pairs")
        cells: Sequence[Cell] = _stash("cells")
        two_lambda: int = _stash("two_lambda")
        return [
            (i, j)
            for i, j in pairs[start:stop]
            if cells_conflict(cells[i], cells[j], two_lambda)
        ]

    return _run_instrumented(_stash("telemetry"), work)


def _masked_rank_task(
    channel: int
) -> Tuple[List[List[int]], Optional[Rollup]]:
    """Rank one masked column (one channel) in a worker."""
    return _run_instrumented(
        _stash("telemetry"),
        lambda: rank_masked_column(_stash("columns")[channel]),
    )


def _integer_rank_task(
    channel: int
) -> Tuple[List[List[int]], Optional[Rollup]]:
    """Rank one integer column (one channel) in a worker."""
    return _run_instrumented(
        _stash("telemetry"),
        lambda: rank_integer_column(_stash("columns")[channel]),
    )


# -- phase front-ends (called by the value backends) --------------------------


def sharded_location_submissions(state: RoundState) -> List[LocationSubmission]:
    """The whole population's location submissions, masked in shards.

    Digest-identical to :func:`~repro.lppa.location.submit_locations` over
    the full population: each chunk masks the same HMAC inputs, and the
    slice order restores the dense id order.
    """
    assert state.users is not None and state.keyring is not None
    assert state.grid is not None and state.shards is not None
    cells = [user.cell for user in state.users]
    with _stashed(
        cells=cells,
        g0=state.keyring.g0,
        grid=state.grid,
        two_lambda=state.two_lambda,
        telemetry=_telemetry_spec("shard.locations"),
    ):
        chunks = _split_results(run_sweep(
            _location_task,
            shard_slices(len(cells), state.shards),
            workers=state.shards,
            chunksize=1,
            name="shard.locations",
        ))
    return [sub for chunk in chunks for sub in chunk]


def independent_user_rngs(state: RoundState) -> bool:
    """True when every bidder draws from its own RNG object.

    The shared-RNG legacy path aliases one ``random.Random`` across all
    users *and* the allocator; its draw interleaving only exists serially,
    so bid synthesis must not fan out.  Entropy-derived rounds
    (:func:`repro.lppa.entropy.derive_round_rngs`) always pass this check.
    """
    if state.user_rngs is None:
        return False
    ids = {id(rng) for rng in state.user_rngs}
    if len(ids) != len(state.user_rngs):
        return False
    return all(state.alloc_rng is not rng for rng in state.user_rngs)


def sharded_bid_submissions(
    state: RoundState,
) -> Tuple[List[BidSubmission], List[SubmissionDisclosure]]:
    """All bid submissions + disclosures, synthesized in shards.

    Falls back to a single serial chunk (still through ``run_sweep``, which
    never spawns a pool for one worker) when the round's RNG streams are
    not per-user independent — see :func:`independent_user_rngs`.  In the
    serial case the stash holds the *actual* RNG objects, so the parent's
    stream state advances exactly as the legacy loop would advance it.
    """
    assert state.users is not None and state.user_rngs is not None
    assert state.keyring is not None and state.scale is not None
    assert state.policies is not None and state.shards is not None
    workers = state.shards if independent_user_rngs(state) else 1
    with _stashed(
        bid_rows=[user.bids for user in state.users],
        keyring=state.keyring,
        scale=state.scale,
        rngs=state.user_rngs,
        policies=state.policies,
        telemetry=_telemetry_spec("shard.bids"),
    ):
        chunks = _split_results(run_sweep(
            _bid_task,
            shard_slices(len(state.users), workers),
            workers=workers,
            chunksize=1,
            name="shard.bids",
        ))
    subs = [sub for chunk in chunks for sub in chunk[0]]
    disclosures = [d for chunk in chunks for d in chunk[1]]
    return subs, disclosures


def sharded_conflict_edges(state: RoundState) -> FrozenSet[Tuple[int, int]]:
    """The private conflict graph's edge set, prefiltered and sharded.

    The grid-bucket prefilter enumerates every plausibly co-located pair
    (a sound superset of the true conflict pairs — see
    :mod:`repro.geo.buckets`); the masked membership tests then decide each
    candidate exactly as the all-pairs scan would, so the resulting edge
    frozenset is identical.  Workers receive only pair-slice indices; the
    masked submissions travel through the fork stash.
    """
    assert state.users is not None and state.location_subs is not None
    assert state.shards is not None
    cells = [user.cell for user in state.users]
    pairs = list(candidate_pairs(cells, state.two_lambda))
    with _stashed(
        pairs=pairs,
        subs=state.location_subs,
        telemetry=_telemetry_spec("shard.conflict"),
    ):
        edge_chunks = _split_results(run_sweep(
            _masked_pair_task,
            shard_slices(len(pairs), state.shards),
            workers=state.shards,
            chunksize=1,
            name="shard.conflict",
        ))
    return frozenset(edge for chunk in edge_chunks for edge in chunk)


def sharded_plain_conflict(
    cells: Sequence[Cell], two_lambda: int, shards: int
) -> ConflictGraph:
    """Plaintext conflict graph via the same prefilter + fan-out."""
    cell_list = list(cells)
    pairs = list(candidate_pairs(cell_list, two_lambda))
    with _stashed(
        pairs=pairs,
        cells=cell_list,
        two_lambda=two_lambda,
        telemetry=_telemetry_spec("shard.conflict"),
    ):
        edge_chunks = _split_results(run_sweep(
            _plain_pair_task,
            shard_slices(len(pairs), shards),
            workers=shards,
            chunksize=1,
            name="shard.conflict",
        ))
    edges = frozenset(edge for chunk in edge_chunks for edge in chunk)
    return ConflictGraph(n_users=len(cell_list), edges=edges)


def sharded_masked_rankings(
    table: MaskedBidTable, shards: int
) -> List[List[List[int]]]:
    """Every channel's ranking, one worker per channel column.

    Identical classes to :meth:`MaskedBidTable.rankings` because worker and
    table share :func:`~repro.lppa.psd.rank_by_ge` — install the result via
    :meth:`MaskedBidTable.set_rankings` before the allocator runs.
    """
    with _stashed(
        columns=[table.column(ch) for ch in range(table.n_channels)],
        telemetry=_telemetry_spec("shard.rankings"),
    ):
        return _split_results(run_sweep(
            _masked_rank_task,
            list(range(table.n_channels)),
            workers=shards,
            chunksize=1,
            name="shard.rankings",
        ))


def sharded_integer_rankings(
    table: IntegerMaskedTable, shards: int
) -> List[List[List[int]]]:
    """Plain-path twin of :func:`sharded_masked_rankings`."""
    with _stashed(
        columns=[table.column(ch) for ch in range(table.n_channels)],
        telemetry=_telemetry_spec("shard.rankings"),
    ):
        return _split_results(run_sweep(
            _integer_rank_task,
            list(range(table.n_channels)),
            workers=shards,
            chunksize=1,
            name="shard.rankings",
        ))
