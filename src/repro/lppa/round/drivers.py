"""Round drivers: where a round's submissions *come from*.

The phase steps in :mod:`repro.lppa.round.core` never talk to bidders or
the TTP directly — they call the round's :class:`RoundDriver` at the five
interaction points below and ingest whatever it produced.  Two drivers
exist:

* :class:`InProcessDriver` — every role lives in this process; submissions
  are synthesized from ``state.users`` via the value backend and charging
  calls the TTP object directly.  Both in-process wrappers
  (:func:`~repro.lppa.session.run_lppa_auction`,
  :func:`~repro.lppa.fastsim.run_fast_lppa`) use the module-level
  :data:`IN_PROCESS_DRIVER` singleton.
* the network driver — defined next to
  :class:`~repro.net.server.AuctioneerServer`, which owns the transport
  state (connections, deadlines, stragglers) the driver needs.  Its hooks
  return coroutines; the core awaits driver returns only when they are
  awaitable, so this base class can stay synchronous.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lppa.round.core import PhaseStep
    from repro.lppa.round.state import RoundState

__all__ = ["IN_PROCESS_DRIVER", "InProcessDriver", "RoundDriver"]


class RoundDriver:
    """The interaction points a round core delegates to its driver.

    Every hook may return either a plain value or an awaitable; the
    executors resolve both (:func:`repro.lppa.round.core._maybe`).
    """

    #: Human-readable driver identifier (appears in docs and tests).
    name: str = "abstract"

    def prepare(self, state: "RoundState") -> Any:
        """Called once before the first phase (roster/transport setup)."""

    def enter_phase(self, state: "RoundState", step: "PhaseStep") -> Any:
        """Called as each phase step begins (state-machine transitions)."""

    def collect_locations(self, state: "RoundState") -> Any:
        """Produce ``state.location_subs`` (or whatever the backend reads)."""
        raise NotImplementedError

    def collect_bids(self, state: "RoundState") -> Any:
        """Produce ``state.bid_subs`` / ``state.disclosures``."""
        raise NotImplementedError

    def decide_charges(self, state: "RoundState", material: List[Any]) -> Any:
        """Exchange winner material with the TTP, returning its decisions."""
        raise NotImplementedError

    def publish(self, state: "RoundState") -> Any:
        """Announce ``state.result`` (broadcast on the net path; no-op here)."""


class InProcessDriver(RoundDriver):
    """All roles in one process: the backend plays the bidders itself."""

    name = "in-process"

    def collect_locations(self, state: "RoundState") -> None:
        state.backend.make_locations(state)

    def collect_bids(self, state: "RoundState") -> None:
        state.backend.make_bids(state)

    def decide_charges(
        self, state: "RoundState", material: List[Any]
    ) -> Optional[List[Any]]:
        assert state.ttp is not None
        return state.ttp.process_batch(material)


#: Shared stateless singleton for the in-process wrappers.
IN_PROCESS_DRIVER = InProcessDriver()
