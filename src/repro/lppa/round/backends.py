"""Value backends: what the numbers in a round *are*.

The round core (:mod:`repro.lppa.round.core`) fixes the phase pipeline;
a :class:`ValueBackend` decides how each phase manipulates values:

* :class:`CryptoBackend` — the paper's actual protocol objects: masked
  location/bid submissions, the HMAC-masked table inside
  :class:`~repro.lppa.auctioneer.Auctioneer`, TTP decryption for charging,
  and exact wire/framed byte accounting.  Produces
  :class:`~repro.lppa.round.results.LppaResult`.
* :class:`PlainBackend` — the order-isomorphic integer pipeline: the same
  :func:`~repro.lppa.bids_advanced.disguise_and_expand` values without the
  masking plumbing, plus the simulator-only extensions (second pricing,
  allocation-time revalidation).  Produces
  :class:`~repro.lppa.round.results.FastLppaResult`.

Backends are stateless — all per-round data lives on the
:class:`~repro.lppa.round.state.RoundState` — so the module-level
:data:`CRYPTO_BACKEND` / :data:`PLAIN_BACKEND` singletons are shared by
every wrapper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.auction.allocation import greedy_allocate, greedy_allocate_validated
from repro.auction.conflict import build_conflict_graph
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.auction.pricing import greedy_allocate_priced, second_price_charge
from repro.lppa.auctioneer import Auctioneer
from repro.lppa.bids_advanced import (
    BidScale,
    SubmissionDisclosure,
    disguise_and_expand,
    submit_bids_advanced,
)
from repro.lppa.codec import encode_bids, encode_location
from repro.lppa.location import submit_locations
from repro.lppa.round import sharding
from repro.lppa.round.results import FastLppaResult, LppaResult
from repro.lppa.round.state import RoundState
from repro.lppa.round.tables import IntegerMaskedTable
from repro.lppa.ttp import TrustedThirdParty

__all__ = [
    "CRYPTO_BACKEND",
    "PLAIN_BACKEND",
    "CryptoBackend",
    "PlainBackend",
    "ValueBackend",
]

#: (event name, visibility, fields) triples emitted as trace ``meta`` records.
TraceMeta = Tuple[str, str, Dict[str, Any]]


class ValueBackend(ABC):
    """One phase pipeline, two value representations (crypto vs plain)."""

    #: Human-readable backend identifier (appears in docs and tests).
    name: str = "abstract"

    @abstractmethod
    def setup(self, state: RoundState) -> None:
        """Fill in the round's setup material (TTP keys / bid scale)."""

    @abstractmethod
    def setup_trace(self, state: RoundState) -> Sequence[TraceMeta]:
        """The trace ``meta`` records announcing this round."""

    @abstractmethod
    def make_locations(self, state: RoundState) -> None:
        """In-process bidder side of the location phase (driver-invoked)."""

    @abstractmethod
    def ingest_locations(self, state: RoundState) -> None:
        """Auctioneer side: turn location material into a conflict graph."""

    @abstractmethod
    def make_bids(self, state: RoundState) -> None:
        """In-process bidder side of the bid phase (driver-invoked)."""

    @abstractmethod
    def ingest_bids(self, state: RoundState) -> None:
        """Auctioneer side: accept the round's bid material."""

    @abstractmethod
    def allocate(self, state: RoundState) -> None:
        """PSD allocation: rankings plus Algorithm 3 over the bid table."""

    @abstractmethod
    def charge_request(self, state: RoundState) -> Optional[List[Any]]:
        """Winner material for the TTP, or ``None`` when charging is local."""

    @abstractmethod
    def finish_charges(
        self, state: RoundState, decisions: Optional[Sequence[Any]]
    ) -> None:
        """Fold charge decisions into the round outcome."""

    @abstractmethod
    def finalize(self, state: RoundState) -> None:
        """Assemble ``state.result`` and the round-end trace arguments."""


class CryptoBackend(ValueBackend):
    """The full protocol: masked submissions, masked table, TTP charging."""

    name = "crypto"

    def setup(self, state: RoundState) -> None:
        # The net server performs TTP setup once at construction and
        # prefills the state; per-round setup happens for in-process runs.
        if state.scale is None:
            state.ttp, state.keyring, state.scale = TrustedThirdParty.setup(
                state.seed,
                state.n_channels,
                bmax=state.bmax,
                rd=state.rd,
                cr=state.cr,
            )

    def setup_trace(self, state: RoundState) -> Sequence[TraceMeta]:
        scale = state.scale
        assert scale is not None and state.grid is not None
        return (
            # rd/cr/width are hidden from the auctioneer (only bidders and
            # the TTP hold them); the announcement is what everyone sees.
            (
                "protocol_setup",
                "ttp",
                {
                    "n_users": state.n_users,
                    "n_channels": state.n_channels,
                    "bmax": state.bmax,
                    "rd": state.rd,
                    "cr": state.cr,
                    "width": scale.width,
                    "emax": scale.emax,
                    "two_lambda": state.two_lambda,
                },
            ),
            (
                "auction_announcement",
                "public",
                {
                    "n_users": state.n_users,
                    "n_channels": state.n_channels,
                    "bmax": state.bmax,
                    "two_lambda": state.two_lambda,
                    "grid_rows": state.grid.rows,
                    "grid_cols": state.grid.cols,
                },
            ),
        )

    def make_locations(self, state: RoundState) -> None:
        assert state.users is not None and state.keyring is not None
        assert state.grid is not None
        if state.shards is not None:
            state.location_subs = sharding.sharded_location_submissions(state)
            return
        # All SUs share g0, so the whole population's location masking is
        # one batch through the crypto backend (digest-identical to the
        # per-user submit_location loop).
        state.location_subs = submit_locations(
            [user.cell for user in state.users],
            state.keyring.g0,
            state.grid,
            state.two_lambda,
        )

    def ingest_locations(self, state: RoundState) -> None:
        assert state.location_subs is not None
        state.auctioneer = Auctioneer(state.n_channels)
        # The conflict-graph timer isolates the auctioneer-side Θ(pairs)
        # work from the bidder-side masking that shares this phase — the
        # scale sweep reads it to report the sharded speedup honestly.
        with obs.timer("lppa.conflict_graph"):
            if state.shards is not None and state.users is not None:
                # Scale mode: candidate pairs come from the grid-bucket
                # prefilter and are decided by the same masked membership
                # tests in worker processes; the auctioneer receives the
                # (identical) edge set and emits its usual trace instant.
                state.conflict = state.auctioneer.receive_locations(
                    state.location_subs,
                    edges=sharding.sharded_conflict_edges(state),
                )
            else:
                state.conflict = state.auctioneer.receive_locations(
                    state.location_subs
                )
        state.location_bytes = sum(s.wire_bytes() for s in state.location_subs)

    def make_bids(self, state: RoundState) -> None:
        assert state.users is not None and state.user_rngs is not None
        assert state.keyring is not None and state.scale is not None
        assert state.policies is not None
        if state.shards is not None:
            state.bid_subs, disclosures = sharding.sharded_bid_submissions(
                state
            )
            state.disclosures.extend(disclosures)
            return
        subs = []
        for idx, user in enumerate(state.users):
            submission, disclosure = submit_bids_advanced(
                idx,
                user.bids,
                state.keyring,
                state.scale,
                state.user_rngs[idx],
                policy=state.policies[idx],
            )
            subs.append(submission)
            state.disclosures.append(disclosure)
        state.bid_subs = subs

    def ingest_bids(self, state: RoundState) -> None:
        assert state.auctioneer is not None and state.bid_subs is not None
        state.auctioneer.receive_bids(state.bid_subs)
        state.bid_bytes = sum(s.wire_bytes() for s in state.bid_subs)

    def allocate(self, state: RoundState) -> None:
        assert state.auctioneer is not None and state.alloc_rng is not None
        if state.shards is not None:
            # Per-channel rankings are the psd phase's hot loop; compute
            # them in shards and install them so channel_rankings() reads
            # the cache (and still emits the per-channel trace records).
            state.auctioneer.table.set_rankings(
                sharding.sharded_masked_rankings(
                    state.auctioneer.table, state.shards
                )
            )
        # channel_rankings/run_allocation emit their own trace events
        # (ranking records, assignment instants, conflict-graph instants
        # having been emitted at ingest time).
        state.rankings = state.auctioneer.channel_rankings()
        state.assignments = state.auctioneer.run_allocation(state.alloc_rng)

    def charge_request(self, state: RoundState) -> Optional[List[Any]]:
        assert state.auctioneer is not None
        return state.auctioneer.charge_material()

    def finish_charges(
        self, state: RoundState, decisions: Optional[Sequence[Any]]
    ) -> None:
        assert state.auctioneer is not None and decisions is not None
        assert state.bid_subs is not None
        state.outcome = state.auctioneer.assemble_outcome(
            decisions, n_users=len(state.bid_subs)
        )

    def finalize(self, state: RoundState) -> None:
        assert state.location_subs is not None and state.bid_subs is not None
        assert state.outcome is not None
        # Actual serialized sizes through the wire codec (payload +
        # framing); encoding also exercises the round-trip invariants in
        # production runs.
        framed = sum(len(encode_location(s)) for s in state.location_subs) + sum(
            len(encode_bids(s)) for s in state.bid_subs
        )
        state.framed_bytes = framed
        obs.count("lppa.framed_bytes", framed)
        obs.count("lppa.rounds")
        assert state.location_bytes is not None and state.bid_bytes is not None
        assert state.conflict is not None and state.rankings is not None
        state.result = LppaResult(
            outcome=state.outcome,
            conflict_graph=state.conflict,
            rankings=state.rankings,
            disclosures=state.disclosure_tuple(),
            location_bytes=state.location_bytes,
            bid_bytes=state.bid_bytes,
            masked_set_bytes=sum(s.masked_set_bytes() for s in state.bid_subs),
            framed_bytes=framed,
        )
        state.round_end_args = {
            "winners": len(state.outcome.wins),
            "framed_bytes": framed,
            "payload_bytes": state.location_bytes + state.bid_bytes,
        }


class PlainBackend(ValueBackend):
    """The integer pipeline: same values, no masking plumbing."""

    name = "plain"

    def setup(self, state: RoundState) -> None:
        if state.scale is None:
            state.scale = BidScale(bmax=state.bmax, rd=state.rd, cr=state.cr)

    def setup_trace(self, state: RoundState) -> Sequence[TraceMeta]:
        return (
            (
                "auction_announcement",
                "public",
                {
                    "n_users": state.n_users,
                    "n_channels": state.n_channels,
                    "bmax": state.bmax,
                    "two_lambda": state.two_lambda,
                    "fastsim": True,
                },
            ),
        )

    def make_locations(self, state: RoundState) -> None:
        """Nothing to synthesize: the plain path reads cells directly."""

    def ingest_locations(self, state: RoundState) -> None:
        if state.conflict is None:
            assert state.users is not None
            with obs.timer("lppa.conflict_graph"):
                if state.shards is not None:
                    state.conflict = sharding.sharded_plain_conflict(
                        [u.cell for u in state.users],
                        state.two_lambda,
                        state.shards,
                    )
                else:
                    state.conflict = build_conflict_graph(
                        [u.cell for u in state.users], state.two_lambda
                    )

    def make_bids(self, state: RoundState) -> None:
        assert state.users is not None and state.user_rngs is not None
        assert state.scale is not None and state.policies is not None
        state.disclosures = [
            SubmissionDisclosure(
                user_id=idx,
                channels=tuple(
                    disguise_and_expand(
                        user.bids,
                        state.scale,
                        state.user_rngs[idx],
                        policy=state.policies[idx],
                    )
                ),
            )
            for idx, user in enumerate(state.users)
        ]

    def ingest_bids(self, state: RoundState) -> None:
        """The integer table is built lazily in :meth:`allocate` so its cost
        lands in the ``psd_allocation`` phase, like the masked table's."""

    def allocate(self, state: RoundState) -> None:
        assert state.conflict is not None and state.alloc_rng is not None
        table = IntegerMaskedTable(
            [[c.masked_expanded for c in d.channels] for d in state.disclosures]
        )
        state.table = table
        if state.shards is not None:
            state.rankings = sharding.sharded_integer_rankings(
                table, state.shards
            )
        else:
            state.rankings = table.rankings()
        tr = state.tr
        if tr is not None:
            for channel, classes in enumerate(state.rankings):
                tr.ranking(channel, classes)
        if state.pricing == "second":
            state.sales = greedy_allocate_priced(
                table, state.conflict, state.alloc_rng
            )
        elif state.revalidate:
            # §V.B extension: the TTP's invalid-winner notifications feed
            # back into the allocation loop, which retries the channel.
            state.assignments, state.ttp_rejections = greedy_allocate_validated(
                table,
                state.conflict,
                state.alloc_rng,
                lambda bidder, channel: state.true_bid(bidder, channel) > 0,
            )
        else:
            state.assignments = greedy_allocate(
                table, state.conflict, state.alloc_rng
            )

    def charge_request(self, state: RoundState) -> Optional[List[Any]]:
        return None  # charging needs no TTP exchange at integer level

    def finish_charges(
        self, state: RoundState, decisions: Optional[Sequence[Any]]
    ) -> None:
        # Charging follows the TTP's rules: a winner whose *true* offset
        # value lies in the zero band [0, rd] is invalid, pays nothing and
        # does not count as satisfied.
        wins: List[WinRecord] = []
        if state.pricing == "second":
            assert state.sales is not None
            for sale in state.sales:
                valid = state.true_bid(sale.bidder, sale.channel) > 0
                charge = (
                    second_price_charge(sale, state.true_bid) if valid else 0
                )
                wins.append(
                    WinRecord(
                        bidder=sale.bidder,
                        channel=sale.channel,
                        charge=charge,
                        valid=valid,
                    )
                )
        else:
            assert state.assignments is not None
            for a in state.assignments:
                valid = state.true_bid(a.bidder, a.channel) > 0
                wins.append(
                    WinRecord(
                        bidder=a.bidder,
                        channel=a.channel,
                        charge=state.true_bid(a.bidder, a.channel) if valid else 0,
                        valid=valid,
                    )
                )
        tr = state.tr
        if tr is not None:
            for record in wins:
                tr.instant(
                    "assignment",
                    vis="auctioneer",
                    bidder=record.bidder,
                    channel=record.channel,
                )
        obs.count("lppa.winners", len(wins))
        state.wins = wins
        assert state.users is not None
        state.outcome = AuctionOutcome(n_users=len(state.users), wins=tuple(wins))

    def finalize(self, state: RoundState) -> None:
        obs.count("lppa.fast_rounds")
        assert state.outcome is not None and state.conflict is not None
        assert state.rankings is not None
        state.result = FastLppaResult(
            outcome=state.outcome,
            conflict_graph=state.conflict,
            rankings=state.rankings,
            disclosures=state.disclosure_tuple(),
            ttp_rejections=state.ttp_rejections,
        )
        state.round_end_args = {"winners": len(state.outcome.wins)}


#: Shared stateless singletons — every wrapper runs through these instances.
CRYPTO_BACKEND = CryptoBackend()
PLAIN_BACKEND = PlainBackend()
