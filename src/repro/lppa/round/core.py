"""The round core: one phase pipeline shared by every LPPA execution path.

The paper's auction round is a fixed sequence of message exchanges —
setup, location submission, bid submission, PSD allocation, TTP charging —
and this module owns that sequence as data: :data:`PHASE_STEPS`, a tuple
of :class:`PhaseStep` objects.  Each step is an ``async def`` over a
:class:`~repro.lppa.round.state.RoundState`; what varies between the three
historical implementations is factored into two plug points the state
carries:

* the **value backend** (:mod:`repro.lppa.round.backends`) — crypto wire
  objects vs the order-isomorphic integer pipeline;
* the **driver** (:mod:`repro.lppa.round.drivers`) — in-process submission
  synthesis vs frames collected over a transport.

Two executors walk the same step objects:

* :func:`execute_round` drives each step's coroutine synchronously.  An
  in-process round never actually suspends — its driver hooks return plain
  values — so each coroutine finishes on the first ``send(None)`` and the
  fastsim hot path pays no event-loop overhead.
* :func:`execute_round_async` awaits each step, which lets the network
  driver's hooks (deadline-gated collection, the TTP service exchange,
  result broadcast) genuinely suspend.

Cross-cutting emission lives here, exactly once: the flight-recorder
events shared by all paths (round begin/end, per-message records) and the
``lppa.*`` submission counters.  Backend-specific emission (byte counters,
``lppa.rounds`` vs ``lppa.fast_rounds``) lives in the backends; the
executors wrap each keyed step in :func:`repro.obs.phase` so every
emission lands in the right phase scope on every path.
"""

from __future__ import annotations

import contextlib
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Coroutine, Iterator, List, Optional, Tuple

from repro import obs
from repro.lppa.round.state import RoundState

__all__ = [
    "PHASE_STEPS",
    "PhaseStep",
    "execute_round",
    "execute_round_async",
    "observe_steps",
]


async def _maybe(value: Any) -> Any:
    """Resolve a driver hook's return: await it only if it is awaitable."""
    if inspect.isawaitable(value):
        return await value
    return value


@dataclass(frozen=True, eq=False)
class PhaseStep:
    """One pipeline stage: an obs phase key (``None`` = unscoped) + body.

    Identity matters: the module-level step objects in :data:`PHASE_STEPS`
    are *the* pipeline, and the wrapper-unification tests assert that every
    execution path runs these exact objects.
    """

    key: Optional[str]
    run: Callable[[RoundState], Coroutine[Any, Any, None]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseStep({self.key or self.run.__name__})"


async def _run_setup(state: RoundState) -> None:
    await _maybe(state.driver.prepare(state))
    state.backend.setup(state)
    tr = state.tr
    if tr is not None:
        tr.round_begin()
        for name, vis, fields in state.backend.setup_trace(state):
            tr.meta(name, vis=vis, **fields)


async def _run_location_submission(state: RoundState) -> None:
    await _maybe(state.driver.collect_locations(state))
    tr = state.tr
    if tr is not None and state.location_subs is not None:
        # Field set and order are scheme-specific: every submission type
        # supplies its own trace_fields() (the scheme seam).
        for sub in state.location_subs:
            tr.message("location_submission", **sub.trace_fields())
    state.backend.ingest_locations(state)
    obs.count(
        "lppa.location_submissions",
        len(state.location_subs)
        if state.location_subs is not None
        else state.submission_count(),
    )
    if state.location_bytes is not None:
        obs.count("lppa.location_bytes", state.location_bytes)


async def _run_bid_submission(state: RoundState) -> None:
    await _maybe(state.driver.collect_bids(state))
    if state.relocate:
        # Net-path straggler repair: participants shrank between the two
        # collect phases, so the conflict graph is rebuilt over the final
        # roster (a second conflict_graph trace instant marks the repair).
        # The byte counters were already recorded for the original set.
        state.backend.ingest_locations(state)
        state.relocate = False
    tr = state.tr
    if tr is not None and state.bid_subs is not None:
        for sub in state.bid_subs:
            tr.message("bid_submission", **sub.trace_fields())
    state.backend.ingest_bids(state)
    obs.count("lppa.bid_submissions", state.submission_count())
    if state.bid_bytes is not None:
        obs.count("lppa.bid_bytes", state.bid_bytes)


async def _run_psd_allocation(state: RoundState) -> None:
    state.backend.allocate(state)


async def _run_ttp_charging(state: RoundState) -> None:
    material = state.backend.charge_request(state)
    decisions: Optional[List[Any]] = None
    if material is not None:
        decisions = await _maybe(state.driver.decide_charges(state, material))
    state.backend.finish_charges(state, decisions)


async def _run_finish(state: RoundState) -> None:
    state.backend.finalize(state)
    await _maybe(state.driver.publish(state))
    tr = state.tr
    if tr is not None:
        tr.round_end(**state.round_end_args)


#: The paper's round, as data.  The two ``key=None`` steps bracket the four
#: phases whose wall time the metrics artifacts account for.
PHASE_STEPS: Tuple[PhaseStep, ...] = (
    PhaseStep(None, _run_setup),
    PhaseStep("location_submission", _run_location_submission),
    PhaseStep("bid_submission", _run_bid_submission),
    PhaseStep("psd_allocation", _run_psd_allocation),
    PhaseStep("ttp_charging", _run_ttp_charging),
    PhaseStep(None, _run_finish),
)

_observers: List[Callable[[PhaseStep, RoundState], None]] = []


@contextlib.contextmanager
def observe_steps() -> Iterator[List[Tuple[PhaseStep, RoundState]]]:
    """Record ``(step, state)`` for every step any executor runs.

    Test hook: lets the unification tests assert that all three wrappers
    execute the *same* :data:`PHASE_STEPS` objects.
    """
    seen: List[Tuple[PhaseStep, RoundState]] = []

    def _record(step: PhaseStep, state: RoundState) -> None:
        seen.append((step, state))

    _observers.append(_record)
    try:
        yield seen
    finally:
        _observers.remove(_record)


def _notify(step: PhaseStep, state: RoundState) -> None:
    for observer in list(_observers):
        observer(step, state)


def _scope(step: PhaseStep) -> Any:
    return obs.phase(step.key) if step.key is not None else contextlib.nullcontext()


def _drive_sync(step: PhaseStep, state: RoundState) -> None:
    """Run one step's coroutine to completion without an event loop."""
    coro = step.run(state)
    try:
        coro.send(None)
    except StopIteration:
        return
    coro.close()
    raise RuntimeError(
        f"phase step {step.key or 'setup/finish'} suspended under a "
        "synchronous driver; run it with execute_round_async"
    )


def execute_round(state: RoundState) -> None:
    """Drive one round synchronously (in-process drivers only).

    The steps are ``async def`` but an in-process round never suspends, so
    each coroutine completes on its first resume — no event loop, no
    per-round overhead beyond a try/except per step.
    """
    for step in PHASE_STEPS:
        _notify(step, state)
        state.driver.enter_phase(state, step)
        with _scope(step):
            _drive_sync(step, state)


async def execute_round_async(state: RoundState) -> None:
    """Drive one round on the event loop (network drivers)."""
    for step in PHASE_STEPS:
        _notify(step, state)
        await _maybe(state.driver.enter_phase(state, step))
        with _scope(step):
            await step.run(state)
