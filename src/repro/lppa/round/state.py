"""Mutable per-round state threaded through the core's phase steps.

A :class:`RoundState` is created by a wrapper (``run_lppa_auction``,
``run_fast_lppa``, :class:`~repro.net.server.AuctioneerServer`), filled in
step by step as :data:`~repro.lppa.round.core.PHASE_STEPS` executes, and
read back out at the end as ``state.result``.  Which fields a given round
uses depends on the value backend:

* crypto rounds populate the wire-object fields (``location_subs``,
  ``bid_subs``), the TTP material (``ttp``/``keyring``/``scale``), the
  :class:`~repro.lppa.auctioneer.Auctioneer` and the byte counters;
* plain rounds populate ``disclosures`` and the integer ``table`` and
  leave every wire field ``None`` — the core treats ``None`` byte counters
  as "this round has no wire".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.auction.allocation import Assignment
from repro.auction.bidders import SecondaryUser
from repro.auction.conflict import ConflictGraph
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.geo.grid import GridSpec
from repro.lppa.auctioneer import Auctioneer
from repro.lppa.bids_advanced import BidScale, SubmissionDisclosure
from repro.lppa.policies import ZeroDisguisePolicy
from repro.lppa.ttp import TrustedThirdParty
from repro.obs.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lppa.round.backends import ValueBackend
    from repro.lppa.round.drivers import RoundDriver

__all__ = ["RoundState"]


@dataclass
class RoundState:
    """One LPPA round in flight.

    The constructor arguments up to ``tr`` are the round's *inputs*; every
    field below the ``flow state`` marker is written by the phase steps.
    """

    backend: "ValueBackend"
    driver: "RoundDriver"
    n_users: int
    n_channels: int
    two_lambda: int
    bmax: int
    rd: int = 4
    cr: int = 8
    seed: bytes = b"lppa-session"
    grid: Optional[GridSpec] = None
    users: Optional[Sequence[SecondaryUser]] = None
    user_rngs: Optional[Sequence[random.Random]] = None
    alloc_rng: Optional[random.Random] = None
    policies: Optional[Sequence[Optional[ZeroDisguisePolicy]]] = None
    pricing: str = "first"
    revalidate: bool = False
    tr: Optional[TraceRecorder] = None
    #: ``None`` = legacy single-process path; ``>= 1`` = scale mode (grid-
    #: bucket prefilter + sharded phase execution, serial when 1).  See
    #: :mod:`repro.lppa.round.sharding` for the determinism contract.
    shards: Optional[int] = None

    # -- crypto setup material (prefilled by the net server, which performs
    # the TTP setup once at construction rather than once per round) -------
    ttp: Optional[TrustedThirdParty] = None
    keyring: Optional[Any] = None
    scale: Optional[BidScale] = None

    # -- flow state, written by the phase steps -----------------------------
    auctioneer: Optional[Auctioneer] = None
    #: Scheme-specific submission objects (PPBS LocationSubmission /
    #: BidSubmission, Bloom BloomLocationSubmission / OpeBidSubmission, ...);
    #: all expose user_id, wire_bytes(), wire_size() and trace_fields().
    location_subs: Optional[List[Any]] = None
    bid_subs: Optional[List[Any]] = None
    disclosures: List[SubmissionDisclosure] = field(default_factory=list)
    conflict: Optional[ConflictGraph] = None
    table: Optional[Any] = None
    rankings: Optional[List[List[List[int]]]] = None
    assignments: Optional[List[Assignment]] = None
    sales: Optional[List[Any]] = None
    wins: List[WinRecord] = field(default_factory=list)
    outcome: Optional[AuctionOutcome] = None
    ttp_rejections: int = 0
    relocate: bool = False
    location_bytes: Optional[int] = None
    bid_bytes: Optional[int] = None
    framed_bytes: Optional[int] = None
    round_end_args: Dict[str, Any] = field(default_factory=dict)
    result: Any = None

    def submission_count(self) -> int:
        """How many bidders this round actually runs over."""
        if self.bid_subs is not None:
            return len(self.bid_subs)
        if self.disclosures:
            return len(self.disclosures)
        return self.n_users

    def true_bid(self, bidder: int, channel: int) -> int:
        """The hidden integer bid behind one disclosure entry (plain path)."""
        return self.disclosures[bidder].channels[channel].true_bid

    def disclosure_tuple(self) -> Tuple[SubmissionDisclosure, ...]:
        """The round's disclosures as the immutable tuple results carry."""
        return tuple(self.disclosures)
