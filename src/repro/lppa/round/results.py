"""Round result records, shared by every execution path.

:class:`LppaResult` is what a value-faithful (crypto) round produces —
in-process via :func:`repro.lppa.session.run_lppa_auction` or over a
transport via :class:`repro.net.server.AuctioneerServer`.
:class:`FastLppaResult` is the integer simulator's equivalent, minus the
wire sizes the simulator never materializes.  Both historically lived next
to their wrappers (``session.py`` / ``fastsim.py``, which still re-export
them) and moved here so the round core can assemble them without importing
the wrappers built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.auction.conflict import ConflictGraph
from repro.auction.outcome import AuctionOutcome
from repro.lppa.bids_advanced import SubmissionDisclosure

__all__ = ["FastLppaResult", "LppaResult"]


@dataclass(frozen=True)
class LppaResult:
    """Everything one protocol round produced."""

    outcome: AuctionOutcome
    conflict_graph: ConflictGraph
    rankings: List[List[List[int]]]
    disclosures: Tuple[SubmissionDisclosure, ...]
    location_bytes: int
    bid_bytes: int
    masked_set_bytes: int
    framed_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Payload bytes (what Theorem 4's accounting models)."""
        return self.location_bytes + self.bid_bytes


@dataclass(frozen=True)
class FastLppaResult:
    """Same shape as :class:`LppaResult`, minus wire sizes.

    ``ttp_rejections`` counts invalid-winner notifications consumed during
    allocation; it is zero unless the round ran with ``revalidate=True``.
    """

    outcome: AuctionOutcome
    conflict_graph: ConflictGraph
    rankings: List[List[List[int]]]
    disclosures: Tuple[SubmissionDisclosure, ...]
    ttp_rejections: int = 0
