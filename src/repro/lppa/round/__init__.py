"""The pluggable LPPA round core.

One auction round is a fixed phase pipeline (setup → location submission →
bid submission → PSD allocation → TTP charging) with two plug points:

* a **value backend** (:class:`CryptoBackend` / :class:`PlainBackend`) —
  what the values flowing through the phases are;
* a **driver** (:class:`InProcessDriver` / the net server's driver) —
  where submissions come from and how the TTP/result exchanges travel.

The three public execution paths are thin wrappers over this package:

=====================================================  ===========  ============
wrapper                                                backend      driver
=====================================================  ===========  ============
:func:`repro.lppa.session.run_lppa_auction`            crypto       in-process
:func:`repro.lppa.fastsim.run_fast_lppa`               plain        in-process
:class:`repro.net.server.AuctioneerServer.run_round`   crypto       network
=====================================================  ===========  ============

See ``DESIGN.md`` ("The round core") for the full architecture notes.
"""

from repro.lppa.round.backends import (
    CRYPTO_BACKEND,
    PLAIN_BACKEND,
    CryptoBackend,
    PlainBackend,
    ValueBackend,
)
from repro.lppa.round.core import (
    PHASE_STEPS,
    PhaseStep,
    execute_round,
    execute_round_async,
    observe_steps,
)
from repro.lppa.round.drivers import IN_PROCESS_DRIVER, InProcessDriver, RoundDriver
from repro.lppa.round.results import FastLppaResult, LppaResult
from repro.lppa.round.sharding import SHARDS_ENV, resolve_shards, shard_slices
from repro.lppa.round.state import RoundState
from repro.lppa.round.tables import IntegerMaskedTable

__all__ = [
    "CRYPTO_BACKEND",
    "IN_PROCESS_DRIVER",
    "PHASE_STEPS",
    "SHARDS_ENV",
    "PLAIN_BACKEND",
    "CryptoBackend",
    "FastLppaResult",
    "IntegerMaskedTable",
    "InProcessDriver",
    "LppaResult",
    "PhaseStep",
    "PlainBackend",
    "RoundDriver",
    "RoundState",
    "ValueBackend",
    "execute_round",
    "execute_round_async",
    "observe_steps",
    "resolve_shards",
    "shard_slices",
]
