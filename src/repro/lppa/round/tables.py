"""The integer view of the masked bid table (the plain backend's table).

Moved here from :mod:`repro.lppa.fastsim` (which re-exports it) so the
round core's :class:`~repro.lppa.round.backends.PlainBackend` can build it
without importing the wrapper layered on top of the core.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.auction.table import BidTable

__all__ = ["IntegerMaskedTable", "rank_integer_column"]


def rank_integer_column(values: Sequence[int]) -> List[List[int]]:
    """Equivalence-class ranking of one integer column, best first.

    The standalone twin of :meth:`IntegerMaskedTable.ranking` — the sharded
    plain-backend psd phase ranks columns in worker processes with this and
    installs the classes via :meth:`IntegerMaskedTable.set_rankings`.
    """
    by_value: Dict[int, List[int]] = {}
    for bidder, value in enumerate(values):
        by_value.setdefault(int(value), []).append(bidder)
    return [by_value[v] for v in sorted(by_value, reverse=True)]


class IntegerMaskedTable(BidTable):
    """What the masked table *is*, numerically: every cell holds a value.

    Unlike :class:`~repro.auction.table.PlainBidTable`, zeros (spread or
    disguised) are genuine entries — the auctioneer cannot tell them apart,
    which is the entire point of the advanced scheme.
    """

    def __init__(self, values: Sequence[Sequence[int]]) -> None:
        if not values:
            raise ValueError("bid table needs at least one row")
        widths = {len(row) for row in values}
        if len(widths) != 1:
            raise ValueError("all rows must cover the same channels")
        self._n_channels = widths.pop()
        if self._n_channels < 1:
            raise ValueError("bid table needs at least one channel")
        self._values = [list(map(int, row)) for row in values]
        self._n_users = len(values)
        self._live: List[Set[int]] = [
            set(range(self._n_users)) for _ in range(self._n_channels)
        ]

    @property
    def n_channels(self) -> int:
        return self._n_channels

    def has_entries(self) -> bool:
        return any(self._live)

    def channel_bidders(self, channel: int) -> Set[int]:
        self._check_channel(channel)
        return set(self._live[channel])

    def has_channel_entries(self, channel: int) -> bool:
        self._check_channel(channel)
        return bool(self._live[channel])

    def max_bidders(self, channel: int) -> List[int]:
        self._check_channel(channel)
        live = self._live[channel]
        if not live:
            raise ValueError(f"channel {channel} has no remaining bids")
        best = max(self._values[b][channel] for b in live)
        return sorted(b for b in live if self._values[b][channel] == best)

    def remove_row(self, bidder: int) -> None:
        for live in self._live:
            live.discard(bidder)

    def remove_entry(self, bidder: int, channel: int) -> None:
        self._check_channel(channel)
        self._live[channel].discard(bidder)

    def ranking(self, channel: int) -> List[List[int]]:
        """Equivalence-class ranking, identical in shape to the masked table's."""
        self._check_channel(channel)
        return rank_integer_column(
            [self._values[bidder][channel] for bidder in range(self._n_users)]
        )

    def rankings(self) -> List[List[List[int]]]:
        """All channels' rankings (the attacker's full view)."""
        return [self.ranking(ch) for ch in range(self._n_channels)]

    def column(self, channel: int) -> List[int]:
        """One channel's integer column in bidder order (sharding transport)."""
        self._check_channel(channel)
        return [self._values[bidder][channel] for bidder in range(self._n_users)]

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self._n_channels:
            raise IndexError(f"channel {channel} outside 0..{self._n_channels - 1}")
