"""Basic Private Bid Submission protocol (section IV.B).

The first, deliberately imperfect scheme: one shared HMAC key ``gb`` masks
every bid's prefix family ``G(b)`` and tail cover ``Q([b, bmax])``.  The
auctioneer finds the maximum bid of a channel by checking equation (3):
``b_mx`` is maximal iff its family intersects every submitted tail range.

Section IV.C.1 then demonstrates three leaks — cross-channel comparability,
the frequency signature of zero bids, and range-prefix cardinality — that
motivate the advanced scheme in :mod:`repro.lppa.bids_advanced`.  The basic
scheme is kept as a runnable protocol both for the paper's Fig. 3 worked
example and so the leak analyses can be demonstrated in tests.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Sequence

from repro import obs
from repro.crypto.keys import KeyRing
from repro.crypto.speck import Speck64128, ctr_encrypt
from repro.lppa.messages import BidSubmission, MaskedBid
from repro.prefix.membership import MaskSpec, mask_specs
from repro.prefix.prefixes import bit_width_for, prefix_family
from repro.prefix.ranges import range_cover

__all__ = ["submit_bids_basic", "encrypt_bid_value", "decrypt_bid_value"]

_BID_DOMAIN = b"lppa/bid"
_PLAINTEXT_BYTES = 4


@lru_cache(maxsize=64)
def _cipher_for(gc: bytes) -> Speck64128:
    # The 27-round Speck key schedule dominates a single 8-byte CTR
    # encryption; a round encrypts thousands of values under one gc, so
    # keep the expanded schedule around.  Speck64128 is stateless after
    # construction, making the shared instance safe.
    return Speck64128(gc)


def encrypt_bid_value(gc: bytes, value: int, rng: random.Random) -> bytes:
    """(nonce || CTR ciphertext) of a bid value under the TTP key ``gc``."""
    obs.count("crypto.speck.encrypt")
    if value < 0 or value >= 1 << (8 * _PLAINTEXT_BYTES):
        raise ValueError(f"bid value {value} outside the 32-bit wire format")
    nonce = rng.getrandbits(32).to_bytes(4, "big")
    cipher = _cipher_for(gc)
    return nonce + ctr_encrypt(cipher, nonce, value.to_bytes(_PLAINTEXT_BYTES, "big"))


def decrypt_bid_value(gc: bytes, blob: bytes) -> int:
    """Inverse of :func:`encrypt_bid_value` (TTP side)."""
    obs.count("crypto.speck.decrypt")
    if len(blob) != 4 + _PLAINTEXT_BYTES:
        raise ValueError("malformed bid ciphertext")
    nonce, ct = blob[:4], blob[4:]
    cipher = _cipher_for(gc)
    return int.from_bytes(ctr_encrypt(cipher, nonce, ct), "big")


def submit_bids_basic(
    user_id: int,
    bids: Sequence[int],
    keyring: KeyRing,
    bmax: int,
    rng: random.Random,
) -> BidSubmission:
    """Bidder side of the basic scheme: mask each bid under the shared ``gb``.

    No zero disguise, no offset, no expansion, no padding — the masked set
    cardinalities and frequencies leak exactly as section IV.C.1 describes.
    """
    if bmax < 1:
        raise ValueError("bmax must be >= 1")
    width = bit_width_for(bmax)
    specs = []
    for bid in bids:
        if not 0 <= bid <= bmax:
            raise ValueError(f"bid {bid} outside [0, {bmax}]")
        specs.append(
            MaskSpec.of(keyring.gb, prefix_family(bid, width), domain=_BID_DOMAIN)
        )
        specs.append(
            MaskSpec.of(
                keyring.gb, range_cover(bid, bmax, width), domain=_BID_DOMAIN
            )
        )
    # One backend batch masks every channel's family and tail; ciphertext
    # nonces are then drawn per channel in the original order (masking
    # consumes no randomness, so the RNG stream is unchanged).
    masked = mask_specs(specs)
    channel_bids = [
        MaskedBid(
            family=masked[2 * ch],
            tail=masked[2 * ch + 1],
            ciphertext=encrypt_bid_value(keyring.gc, bid, rng),
        )
        for ch, bid in enumerate(bids)
    ]
    return BidSubmission(user_id=user_id, channel_bids=tuple(channel_bids))
