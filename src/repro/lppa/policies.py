"""Zero-disguise policies (section IV.C.2-3).

When a bid is zero the advanced scheme may *pretend* it is some positive
number ``t``: the masked prefix sets are computed for ``t`` while the TTP
ciphertext keeps the truth.  Each user selects the substitution law
independently, trading privacy (more disguises, more forged availability
confusing BCM) against auction performance (a disguised zero can win and
waste a channel).  The paper requires ``p_1 >= p_2 >= ... >= p_b(max)`` —
larger pretend-values must be rarer.

Policies are expressed over the user's own bid scale ``b(max)`` (the user's
maximum bid), as in the paper's step (i).
"""

from __future__ import annotations

import abc
import random

__all__ = [
    "ZeroDisguisePolicy",
    "KeepZeroPolicy",
    "LinearDecreasingPolicy",
    "UniformReplacePolicy",
    "UniformDisguisePolicy",
]


class ZeroDisguisePolicy(abc.ABC):
    """Chooses what a zero bid pretends to be."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, user_bmax: int) -> int:
        """Return the pretend value ``t``.

        ``0`` means "stay zero" (the value is then spread over ``[0, rd]``
        by the submission layer); ``t >= 1`` means "pretend the bid is t".
        ``user_bmax`` is the user's largest true bid ``b(max)``; when it is
        zero there is nothing plausible to pretend and the policy must
        return 0.
        """

    @abc.abstractmethod
    def replace_probability(self, user_bmax: int) -> float:
        """``1 - p_0``: probability that a zero is disguised at all."""


class KeepZeroPolicy(ZeroDisguisePolicy):
    """Never disguise (``p_0 = 1``); zeros are only spread over [0, rd]."""

    def sample(self, rng: random.Random, user_bmax: int) -> int:
        return 0

    def replace_probability(self, user_bmax: int) -> float:
        return 0.0


class LinearDecreasingPolicy(ZeroDisguisePolicy):
    """Disguise with probability ``1 - p0``; pretend values weighted linearly.

    Conditional on disguising, ``t`` is drawn from ``1..b(max)`` with weight
    proportional to ``b(max) - t + 1`` — the paper's monotone requirement
    ``p_1 >= ... >= p_b(max)`` with a simple concrete law.
    """

    def __init__(self, replace_probability: float) -> None:
        if not 0.0 <= replace_probability <= 1.0:
            raise ValueError("replace_probability must lie in [0, 1]")
        self._p_replace = replace_probability

    def sample(self, rng: random.Random, user_bmax: int) -> int:
        if user_bmax < 1 or rng.random() >= self._p_replace:
            return 0
        # Inverse-CDF draw over weights b(max), b(max)-1, ..., 1 for t=1..b(max).
        total = user_bmax * (user_bmax + 1) // 2
        target = rng.random() * total
        acc = 0.0
        for t in range(1, user_bmax + 1):
            acc += user_bmax - t + 1
            if target < acc:
                return t
        return user_bmax

    def replace_probability(self, user_bmax: int) -> float:
        return self._p_replace if user_bmax >= 1 else 0.0


class UniformReplacePolicy(ZeroDisguisePolicy):
    """Disguise with probability ``1 - p0``; pretend value uniform on 1..b(max).

    The boundary case of the paper's monotonicity requirement
    (``p_1 = ... = p_b(max)``): conditional on disguising at all, every
    positive pretend value is equally likely.  This is the policy used by
    the Fig. 5 sweeps — the flat conditional law gives the forged bids
    enough mass at high values to actually win channels, which is what
    produces the paper's performance-degradation curve.
    """

    def __init__(self, replace_probability: float) -> None:
        if not 0.0 <= replace_probability <= 1.0:
            raise ValueError("replace_probability must lie in [0, 1]")
        self._p_replace = replace_probability

    def sample(self, rng: random.Random, user_bmax: int) -> int:
        if user_bmax < 1 or rng.random() >= self._p_replace:
            return 0
        return rng.randint(1, user_bmax)

    def replace_probability(self, user_bmax: int) -> float:
        return self._p_replace if user_bmax >= 1 else 0.0


class UniformDisguisePolicy(ZeroDisguisePolicy):
    """Theorem 3's best-privacy case: ``p_0 = ... = p_b(max) = 1/(1+b(max))``."""

    def sample(self, rng: random.Random, user_bmax: int) -> int:
        if user_bmax < 1:
            return 0
        return rng.randint(0, user_bmax)

    def replace_probability(self, user_bmax: int) -> float:
        if user_bmax < 1:
            return 0.0
        return user_bmax / (user_bmax + 1)
