"""LPPA — Location Privacy Preserving Dynamic Spectrum Auction (ICDCS 2013).

A complete reproduction of Liu, Zhu, Du, Chen and Guan's LPPA system:

* :mod:`repro.crypto` — from-scratch SHA-256 / HMAC / Speck64-CTR and the
  TTP key machinery;
* :mod:`repro.prefix` — prefix membership verification (families, range
  covers, numericalization, HMAC-masked sets);
* :mod:`repro.geo` — synthetic FCC-style coverage maps: four 75 km x 75 km
  areas, 129 channels, availability + per-cell quality database;
* :mod:`repro.auction` — the dynamic spectrum auction substrate (bidders,
  conflict graphs, the greedy Algorithm 3, the plaintext baseline);
* :mod:`repro.lppa` — the paper's contribution: PPBS (private location and
  bid submission) and PSD (masked allocation + TTP charging);
* :mod:`repro.attacks` — BCM, BPM and the anti-LPPA adversary, with the
  Shokri-style privacy metrics;
* :mod:`repro.analysis` — Theorems 1-4, Monte-Carlo validation,
  communication-cost accounting;
* :mod:`repro.experiments` — harnesses regenerating every figure of the
  paper's evaluation.

Quick start::

    import random
    from repro.geo import make_database
    from repro.auction import generate_users
    from repro.lppa import run_lppa_auction

    db = make_database(area=3, n_channels=20)
    users = generate_users(db, 50, random.Random(7))
    result = run_lppa_auction(
        users, db.coverage.grid, two_lambda=6, bmax=127, rng=random.Random(1)
    )
    print(result.outcome.sum_of_winning_bids())
"""

from repro.attacks import bcm_attack, bpm_attack, lppa_bcm_attack, score_attack
from repro.auction import generate_users, run_plain_auction
from repro.geo import GridSpec, make_coverage_map, make_database
from repro.lppa import (
    TrustedThirdParty,
    UniformReplacePolicy,
    run_fast_lppa,
    run_lppa_auction,
)

__version__ = "1.0.0"

__all__ = [
    "bcm_attack",
    "bpm_attack",
    "lppa_bcm_attack",
    "score_attack",
    "generate_users",
    "run_plain_auction",
    "GridSpec",
    "make_coverage_map",
    "make_database",
    "TrustedThirdParty",
    "UniformReplacePolicy",
    "run_fast_lppa",
    "run_lppa_auction",
    "__version__",
]
