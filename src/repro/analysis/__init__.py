"""Analytic results: Theorems 1-4, their Monte-Carlo validation, comm cost."""

from repro.analysis.comm_cost import (
    CommCostReport,
    measure_bid_cost,
    measure_location_cost,
)
from repro.analysis.security import (
    cardinality_rank_correlation,
    cross_channel_linkability,
    frequency_zero_guess,
    tail_cardinalities,
)
from repro.analysis.montecarlo import (
    simulate_expected_plaintext_hits,
    simulate_no_leakage,
    simulate_zero_not_winning,
)
from repro.analysis.theorems import (
    theorem1_exact,
    theorem1_paper,
    theorem2_exact,
    theorem2_paper,
    theorem3_paper,
    theorem4_bits,
)

__all__ = [
    "CommCostReport",
    "cardinality_rank_correlation",
    "cross_channel_linkability",
    "frequency_zero_guess",
    "tail_cardinalities",
    "measure_bid_cost",
    "measure_location_cost",
    "simulate_expected_plaintext_hits",
    "simulate_no_leakage",
    "simulate_zero_not_winning",
    "theorem1_exact",
    "theorem1_paper",
    "theorem2_exact",
    "theorem2_paper",
    "theorem3_paper",
    "theorem4_bits",
]
