"""Monte-Carlo validation of Theorems 1-3.

Each simulator reproduces the exact experiment the theorem models — zeros
independently disguised by the substitution law, the auctioneer picking the
maximum / the ``t``-largest — and estimates the quantity of interest by
sampling.  The test suite checks the closed forms against these estimates;
the benchmark harness records both for EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = [
    "simulate_zero_not_winning",
    "simulate_no_leakage",
    "simulate_expected_plaintext_hits",
]


def _draw_disguise(rng: random.Random, probs: Sequence[float]) -> int:
    """One disguise value ``r`` with probability ``probs[r]``."""
    target = rng.random()
    acc = 0.0
    for r, p in enumerate(probs):
        acc += p
        if target < acc:
            return r
    return len(probs) - 1


def simulate_zero_not_winning(
    b_n: int,
    m: int,
    probs: Sequence[float],
    rng: random.Random,
    *,
    trials: int = 20000,
) -> float:
    """Estimate Theorem 1's ``p_f``: the channel maximum is a true bid.

    The non-zero bids are summarised by their maximum ``b_n``; each of the
    ``m`` zeros disguises independently; ties at the top break uniformly.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    hits = 0
    for _ in range(trials):
        disguises = [_draw_disguise(rng, probs) for _ in range(m)]
        top_disguise = max(disguises) if disguises else -1
        if top_disguise < b_n:
            hits += 1
        elif top_disguise == b_n:
            # Tie between the true b_n and every disguise at b_n.
            n_tied_zeros = sum(1 for d in disguises if d == b_n)
            if rng.randrange(n_tied_zeros + 1) == 0:
                hits += 1
    return hits / trials


def simulate_no_leakage(
    b_n: int,
    m: int,
    t: int,
    probs: Sequence[float],
    rng: random.Random,
    *,
    trials: int = 20000,
) -> float:
    """Estimate Theorem 2's ``p_f``: the ``t`` kept bids are all zeros.

    As in the theorem, non-zero bids are summarised by their maximum
    ``b_n``; the auctioneer keeps exactly ``t`` bids, descending by value,
    filling a tie at the cut-off uniformly at random.
    """
    if not 0 < t <= m:
        raise ValueError("need 0 < t <= m")
    hits = 0
    for _ in range(trials):
        disguises = [_draw_disguise(rng, probs) for _ in range(m)]
        above = sum(1 for d in disguises if d > b_n)
        if above >= t:
            hits += 1
            continue
        tied_zeros = sum(1 for d in disguises if d == b_n)
        need = t - above
        if tied_zeros < need:
            continue  # the true b_n is necessarily selected
        # Choose `need` from the tie class of (tied_zeros + 1) items;
        # no leak iff the true b_n is not among them.
        pool = [True] * tied_zeros + [False]  # True = zero
        chosen = rng.sample(pool, need)
        if all(chosen):
            hits += 1
    return hits / trials


def simulate_expected_plaintext_hits(
    bids_sorted: Sequence[int],
    m: int,
    t: int,
    bmax: int,
    rng: random.Random,
    *,
    trials: int = 20000,
) -> float:
    """Estimate Theorem 3's ``E[mu]`` under the uniform disguise law.

    The auctioneer keeps *all users bidding the t largest values* (the
    theorem's convention); ``mu`` counts true (plaintext) bids among them.
    """
    if any(b <= 0 for b in bids_sorted):
        raise ValueError("bids_sorted must be positive")
    if t < 1:
        raise ValueError("t must be positive")
    total = 0
    for _ in range(trials):
        disguises = [rng.randint(0, bmax) for _ in range(m)]
        values: List[tuple] = [(b, True) for b in bids_sorted] + [
            (d, False) for d in disguises
        ]
        distinct = sorted({v for v, _ in values}, reverse=True)
        kept_values = set(distinct[:t])
        total += sum(1 for v, is_true in values if v in kept_values and is_true)
    return total / trials
