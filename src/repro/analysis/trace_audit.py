"""Trace-driven auditors: check the paper's claims against recorded events.

:mod:`repro.obs.trace` records what the protocol *actually emitted*; this
module replays those recordings against the claims:

* :func:`audit_comm_cost` — each round is checked against its privacy
  scheme's exact size model (the round's ``protocol_setup`` meta names the
  scheme; untagged rounds are PPBS).  For PPBS, Theorem 4 is exact for the
  advanced scheme (per user-channel: a ``w + 1``-digest family plus a tail
  padded to ``2w - 2`` digests), so the masked-bid bytes measured per
  message must equal :func:`repro.analysis.comm_cost.predicted_bid_bits`
  *to the bit*; for the Bloom scheme the model is the fixed per-channel OPE
  ciphertext width.  The auditor also re-derives every message's framing
  from the scheme's codec arithmetic
  (:meth:`~repro.lppa.schemes.base.PrivacyScheme.expected_framing`),
  failing loudly on any divergence — if an encoder change shifts a single
  byte, the audit, not just a unit test, catches it.

* :func:`audit_privacy` — "what could this auctioneer have learned from
  exactly these messages": the auditor filters the trace down to the
  adversary-visible stream (:func:`repro.obs.trace.adversary_view`),
  rebuilds the per-channel rankings the curious auctioneer saw, and runs
  the paper's ranking-based BCM pipeline
  (:func:`repro.attacks.against_lppa.lppa_bcm_attack`) on them, reporting
  the candidate-area / anonymity-set trajectory per round.  Because it
  consumes only ``public``/``auctioneer`` events, the report *is* the
  adversary's knowledge — SU- and TTP-side records never reach it.

Layering note: recording lives in ``repro.obs`` (no protocol imports);
consumption lives here in ``repro.analysis`` where the attack and theorem
modules already are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.attacks.against_lppa import lppa_bcm_attack
from repro.geo.database import GeoLocationDatabase
from repro.obs.trace import adversary_view

__all__ = [
    "TraceAuditError",
    "CommRoundAudit",
    "CommAuditReport",
    "PrivacyRoundAudit",
    "PrivacyAuditReport",
    "audit_comm_cost",
    "audit_privacy",
]

Record = Dict[str, Any]


class TraceAuditError(AssertionError):
    """A recorded event stream contradicts a claim it is audited against."""


@dataclass(frozen=True)
class CommRoundAudit:
    """Theorem 4 versus measured bytes for one recorded round."""

    round: int
    n_users: int
    n_channels: int
    width: int
    digest_bytes: int
    predicted_bits: float
    measured_masked_bits: int
    location_bytes: int
    total_wire_bytes: int

    @property
    def exact(self) -> bool:
        return self.measured_masked_bits == self.predicted_bits

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table emission."""
        return {
            "round": self.round,
            "N": self.n_users,
            "k": self.n_channels,
            "w": self.width,
            "predicted_kbits": round(self.predicted_bits / 1000, 1),
            "measured_kbits": round(self.measured_masked_bits / 1000, 1),
            "exact": self.exact,
        }


@dataclass(frozen=True)
class CommAuditReport:
    """All rounds' communication audits plus framing-check accounting."""

    rounds: Tuple[CommRoundAudit, ...]
    messages_checked: int
    errors: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.errors


def _round_of(record: Record) -> int:
    value = record.get("round")
    return -1 if value is None else int(value)


def audit_comm_cost(
    records: Sequence[Record], *, strict: bool = True
) -> CommAuditReport:
    """Replay a trace and cross-check every wire size against the formulas.

    ``records`` is the event list of a loaded trace (header excluded or
    included — header records are ignored).  With ``strict`` (the default)
    any divergence raises :class:`TraceAuditError`; otherwise the report
    carries the error strings and ``passed`` is ``False``.
    """
    errors: List[str] = []
    setups: Dict[int, Record] = {}
    by_round: Dict[int, List[Record]] = {}
    for record in records:
        kind = record.get("type")
        if kind == "meta" and record.get("name") == "protocol_setup":
            setups[_round_of(record)] = record
        elif kind == "message":
            by_round.setdefault(_round_of(record), []).append(record)

    if not by_round:
        raise TraceAuditError(
            "trace contains no message events — nothing to audit "
            "(fastsim traces carry no wire messages; audit a session trace)"
        )

    # Schemes own the framing arithmetic and the bid-material size model;
    # the import is deferred so repro.analysis stays importable without
    # dragging the protocol layer in at module-import time.
    from repro.lppa.schemes.registry import get_scheme

    rounds: List[CommRoundAudit] = []
    checked = 0
    for round_idx in sorted(by_round):
        messages = by_round[round_idx]
        setup = setups.get(round_idx)
        args = (setup.get("args") or {}) if setup is not None else {}
        # Rounds recorded without a scheme-tagged setup are PPBS (the
        # default scheme adds no tag, keeping pre-seam traces auditable).
        scheme = get_scheme(str(args.get("scheme", "ppbs")))
        bid_msgs = [m for m in messages if m["kind"] == "bid_submission"]
        loc_msgs = [m for m in messages if m["kind"] == "location_submission"]

        for msg in messages:
            checked += 1
            payload = msg.get("payload_bytes")
            wire = msg.get("wire_size")
            if payload is None or wire is None:
                errors.append(
                    f"round {round_idx}: {msg['kind']} event (seq {msg.get('seq')}) "
                    "lacks size accounting"
                )
                continue
            kind = msg["kind"]
            framing = scheme.expected_framing(kind, msg)
            if framing is None:
                continue  # the scheme makes no framing claim for this kind
            expected = payload + framing
            if wire != expected:
                errors.append(
                    f"round {round_idx}: {kind} su={msg.get('su')} wire_size "
                    f"{wire} != payload {payload} + framing (expected {expected})"
                )

        if not bid_msgs:
            continue
        if setup is None:
            errors.append(
                f"round {round_idx}: bid submissions recorded but no "
                "protocol_setup meta — cannot form the Theorem 4 prediction"
            )
            continue
        fields, scheme_errors = scheme.audit_bid_round(round_idx, bid_msgs, args)
        errors.extend(scheme_errors)
        if fields is None:
            continue
        rounds.append(
            CommRoundAudit(
                round=round_idx,
                location_bytes=sum(int(m.get("payload_bytes") or 0) for m in loc_msgs),
                total_wire_bytes=sum(int(m.get("wire_size") or 0) for m in messages),
                **fields,
            )
        )

    if not rounds and not errors:
        raise TraceAuditError(
            "trace contains messages but no bid submissions — nothing to "
            "check against Theorem 4"
        )
    report = CommAuditReport(
        rounds=tuple(rounds), messages_checked=checked, errors=tuple(errors)
    )
    if strict and errors:
        raise TraceAuditError(
            f"communication-cost audit failed ({len(errors)} divergences): "
            + "; ".join(errors[:5])
            + ("; ..." if len(errors) > 5 else "")
        )
    return report


@dataclass(frozen=True)
class PrivacyRoundAudit:
    """BCM candidate-area statistics for one round and one top-fraction."""

    round: int
    fraction: float
    n_users: int
    mean_cells: float
    min_cells: int
    max_cells: int
    empty_results: int  # users whose robust intersection still emptied

    @property
    def mean_area_fraction(self) -> float:
        """Mean candidate cells over the users audited, as raw cell count
        (normalize by the grid size for an area fraction)."""
        return self.mean_cells

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table emission."""
        return {
            "round": self.round,
            "fraction": self.fraction,
            "users": self.n_users,
            "mean_cells": round(self.mean_cells, 2),
            "min_cells": self.min_cells,
            "max_cells": self.max_cells,
            "empty": self.empty_results,
        }


@dataclass(frozen=True)
class PrivacyAuditReport:
    """The anonymity-set / candidate-area trajectory of one trace."""

    rounds: Tuple[PrivacyRoundAudit, ...]
    n_events_consumed: int
    robust: bool


def _rankings_by_round(
    events: Sequence[Record],
) -> Dict[int, Dict[int, List[List[int]]]]:
    grouped: Dict[int, Dict[int, List[List[int]]]] = {}
    for record in events:
        if record.get("type") != "ranking":
            continue
        grouped.setdefault(_round_of(record), {})[int(record["channel"])] = [
            list(cls) for cls in record["classes"]
        ]
    return grouped


def audit_privacy(
    records: Sequence[Record],
    database: GeoLocationDatabase,
    *,
    fractions: Sequence[float] = (0.25, 0.5),
    robust: bool = True,
) -> PrivacyAuditReport:
    """Run the ranking-based BCM attack on the adversary-visible stream.

    ``database`` is the public geo-location spectrum database (the paper's
    adversary holds it by assumption — it is not part of the trace).  The
    auditor deliberately narrows the record stream with
    :func:`repro.obs.trace.adversary_view` first, so SU-side and TTP-side
    events cannot leak into the attack even if present in the file.

    Raises :class:`TraceAuditError` when the trace carries no usable
    ranking events or a round's channel set does not match the database.
    """
    visible = adversary_view(records)
    announcements = [
        r
        for r in visible
        if r.get("type") == "meta" and r.get("name") == "auction_announcement"
    ]
    by_round = _rankings_by_round(visible)
    if not by_round:
        raise TraceAuditError(
            "no adversary-visible ranking events in the trace — "
            "the privacy audit has nothing to attack"
        )
    n_users_by_round: Dict[int, int] = {
        _round_of(a): int((a.get("args") or {}).get("n_users", 0))
        for a in announcements
    }

    rounds: List[PrivacyRoundAudit] = []
    for round_idx in sorted(by_round):
        channels = by_round[round_idx]
        if sorted(channels) != list(range(database.n_channels)):
            raise TraceAuditError(
                f"round {round_idx}: recorded channels {sorted(channels)} do "
                f"not cover the database's {database.n_channels} channels"
            )
        rankings = [channels[ch] for ch in range(database.n_channels)]
        n_users = n_users_by_round.get(round_idx, 0)
        if n_users <= 0:
            n_users = max(
                (max((max(cls) for cls in rk if cls), default=-1) for rk in rankings),
                default=-1,
            ) + 1
        if n_users <= 0:
            raise TraceAuditError(
                f"round {round_idx}: cannot determine the bidder population"
            )
        for fraction in fractions:
            masks = lppa_bcm_attack(
                database, rankings, n_users, fraction, robust=robust
            )
            cell_counts = [int(mask.sum()) for mask in masks]
            rounds.append(
                PrivacyRoundAudit(
                    round=round_idx,
                    fraction=fraction,
                    n_users=n_users,
                    mean_cells=sum(cell_counts) / len(cell_counts),
                    min_cells=min(cell_counts),
                    max_cells=max(cell_counts),
                    empty_results=sum(1 for c in cell_counts if c == 0),
                )
            )
    return PrivacyAuditReport(
        rounds=tuple(rounds), n_events_consumed=len(visible), robust=robust
    )
