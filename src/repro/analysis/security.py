"""Empirical leakage quantifiers (section IV.C.1's three basic-scheme leaks).

The paper motivates the advanced bid scheme by three concrete analyses the
curious auctioneer can run on basic-scheme submissions:

1. **frequency filtering** — zero is by far the most common bid, so the
   most frequent masked value *is* the zero ciphertext;
2. **cardinality ordering** — the tail cover ``Q([b, bmax])`` has between 1
   and ``2w - 2`` prefixes depending on ``b``, so set sizes order the bids;
3. **cross-channel comparison** — one shared HMAC key makes bids on
   different channels mutually comparable, widening every analysis to the
   whole table.

Each function below runs one of those analyses on a pile of submissions and
returns a quantified leak.  Run against basic-scheme submissions they
succeed; against advanced-scheme submissions they collapse to chance — the
test suite pins both directions, turning section IV.C.1's narrative into
executable claims.
"""

from __future__ import annotations

import collections
from typing import Dict, List, Sequence, Set, Tuple

from repro.lppa.messages import BidSubmission
from repro.prefix.membership import MaskedSet

__all__ = [
    "frequency_zero_guess",
    "tail_cardinalities",
    "cardinality_rank_correlation",
    "cross_channel_linkability",
]


def _family_key(masked: MaskedSet) -> Tuple[bytes, ...]:
    return tuple(sorted(masked.digests))


def frequency_zero_guess(
    submissions: Sequence[BidSubmission],
) -> Tuple[Set[Tuple[int, int]], int]:
    """Leak 1: guess zero bids as the modal masked family.

    Returns (guessed zero entries as (user, channel) pairs, multiplicity of
    the modal family).  Against the basic scheme every zero bid shares one
    family, so the guess set is exactly the zeros; against the advanced
    scheme the ``rd`` spreading and ``cr`` expansion scatter the zeros over
    ``cr * (rd + 1)`` expanded values, so the modal multiplicity collapses
    to birthday-collision level and the guess no longer covers the zeros.
    """
    if not submissions:
        raise ValueError("need at least one submission")
    counter: collections.Counter = collections.Counter()
    owners: Dict[Tuple[bytes, ...], List[Tuple[int, int]]] = {}
    for user, submission in enumerate(submissions):
        for channel, masked_bid in enumerate(submission.channel_bids):
            key = _family_key(masked_bid.family)
            counter[key] += 1
            owners.setdefault(key, []).append((user, channel))
    modal_key, multiplicity = counter.most_common(1)[0]
    return set(owners[modal_key]), multiplicity


def tail_cardinalities(
    submissions: Sequence[BidSubmission], *, channel: int = 0
) -> List[int]:
    """Leak 2's raw material: each submission's tail-cover size on a channel.

    Under the basic scheme ``|Q([b, bmax])|`` varies with ``b`` (between 1
    and ``2w - 2``), so distinct sizes distinguish prices; the advanced
    scheme pads every tail to the same ``2w - 2``, so this list collapses
    to a single repeated value.
    """
    if not submissions:
        raise ValueError("need at least one submission")
    return [len(s.channel_bids[channel].tail) for s in submissions]


def cardinality_rank_correlation(
    submissions: Sequence[BidSubmission],
    true_bids: Sequence[Sequence[int]],
    *,
    channel: int = 0,
) -> float:
    """Leak 2: Spearman correlation between tail-set size and true bid.

    Larger bids have shorter tail ranges ``[b, bmax]`` — fewer cover
    prefixes — so under the basic scheme cardinality anti-correlates with
    the bid (correlation near -1).  The advanced scheme pads every tail to
    ``2w - 2`` digests; all cardinalities tie and the correlation is 0.
    """
    if len(submissions) != len(true_bids):
        raise ValueError("submissions and true_bids must align")
    if len(submissions) < 2:
        raise ValueError("need at least two submissions to correlate")
    sizes = tail_cardinalities(submissions, channel=channel)
    bids = [row[channel] for row in true_bids]
    return _spearman(sizes, bids)


def _rank(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def _spearman(a: Sequence[float], b: Sequence[float]) -> float:
    ra, rb = _rank(a), _rank(b)
    n = len(ra)
    mean_a = sum(ra) / n
    mean_b = sum(rb) / n
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(ra, rb))
    var_a = sum((x - mean_a) ** 2 for x in ra)
    var_b = sum((y - mean_b) ** 2 for y in rb)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


def cross_channel_linkability(submissions: Sequence[BidSubmission]) -> float:
    """Leak 3: fraction of cross-channel bid pairs the auctioneer can order.

    A pair (channel r, channel s) of one user's bids is *orderable* when
    the family of one intersects the tail of the other.  Under the shared
    basic key that is every pair (the membership semantics hold across
    channels); under per-channel keys no genuine digest can match and only
    the negligible filler-collision probability remains.
    """
    if not submissions:
        raise ValueError("need at least one submission")
    orderable = 0
    total = 0
    for submission in submissions:
        bids = submission.channel_bids
        for r in range(len(bids)):
            for s in range(r + 1, len(bids)):
                total += 1
                if bids[r].family.intersects(bids[s].tail) or bids[
                    s
                ].family.intersects(bids[r].tail):
                    orderable += 1
    if total == 0:
        raise ValueError("need at least two channels to compare")
    return orderable / total
