"""Communication-cost accounting (Theorem 4 versus measured bytes).

The protocol messages in :mod:`repro.lppa.messages` report their serialized
sizes; this module aggregates them and produces the Theorem 4 prediction for
the same parameters, so the benchmark harness can print predicted-vs-
measured rows.

The advanced bid submission is *exactly* sized by the theorem: per (user,
channel) the masked material is one prefix family of ``w + 1`` digests plus
one tail cover padded to ``2w - 2`` digests — ``3w - 1`` digests of
``h * (w + 1)`` bits each.  Ciphertexts and user ids ride on top and are
reported separately (the paper's theorem covers the prefix material only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.theorems import theorem4_bits
from repro.lppa.bids_advanced import BidScale
from repro.lppa.messages import BidSubmission, LocationSubmission

__all__ = ["CommCostReport", "measure_bid_cost", "measure_location_cost"]


@dataclass(frozen=True)
class CommCostReport:
    """Predicted vs measured transmission volume for one auction round."""

    n_users: int
    n_channels: int
    width: int
    digest_bytes: int
    predicted_bits: float
    measured_masked_bits: int
    measured_total_bits: int

    @property
    def prediction_error(self) -> float:
        """Relative deviation of the measured prefix material from Theorem 4."""
        return (
            self.measured_masked_bits - self.predicted_bits
        ) / self.predicted_bits

    def as_row(self) -> dict:
        """Flat dict for table emission by the benchmark harness."""
        return {
            "N": self.n_users,
            "k": self.n_channels,
            "w": self.width,
            "predicted_kbits": round(self.predicted_bits / 1000, 1),
            "measured_kbits": round(self.measured_masked_bits / 1000, 1),
            "total_kbits": round(self.measured_total_bits / 1000, 1),
            "error": round(self.prediction_error, 4),
        }


def measure_bid_cost(
    submissions: Sequence[BidSubmission], scale: BidScale
) -> CommCostReport:
    """Compare one round's bid submissions against Theorem 4."""
    if not submissions:
        raise ValueError("need at least one submission")
    n_users = len(submissions)
    n_channels = submissions[0].n_channels
    digest_bytes = submissions[0].channel_bids[0].family.digest_bytes
    width = scale.width
    h = 8.0 * digest_bytes / (width + 1)
    return CommCostReport(
        n_users=n_users,
        n_channels=n_channels,
        width=width,
        digest_bytes=digest_bytes,
        predicted_bits=theorem4_bits(n_users, n_channels, width, h),
        measured_masked_bits=sum(s.masked_set_bytes() for s in submissions) * 8,
        measured_total_bits=sum(s.wire_bytes() for s in submissions) * 8,
    )


def measure_location_cost(submissions: Sequence[LocationSubmission]) -> int:
    """Total location-submission bytes (no closed form in the paper)."""
    return sum(s.wire_bytes() for s in submissions)
