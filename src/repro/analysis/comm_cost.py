"""Communication-cost accounting (Theorem 4 versus measured bytes).

The protocol messages in :mod:`repro.lppa.messages` report their serialized
sizes; this module aggregates them and produces the Theorem 4 prediction for
the same parameters, so the benchmark harness can print predicted-vs-
measured rows.

The advanced bid submission is *exactly* sized by the theorem: per (user,
channel) the masked material is one prefix family of ``w + 1`` digests plus
one tail cover padded to ``2w - 2`` digests — ``3w - 1`` digests of
``h * (w + 1)`` bits each.  Ciphertexts and user ids ride on top and are
reported separately (the paper's theorem covers the prefix material only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lppa.bids_advanced import BidScale
from repro.lppa.messages import BidSubmission, LocationSubmission

__all__ = [
    "CommCostReport",
    "predicted_bid_bits",
    "measure_bid_cost",
    "measure_location_cost",
]


def predicted_bid_bits(
    n_users: int, n_channels: int, width: int, digest_bytes: int
) -> int:
    """Theorem 4's prediction for one round's masked bid material, in bits.

    ``h`` in the theorem is digest bits per prefix element; our digests are
    fixed ``digest_bytes`` blobs covering a ``width + 1``-bit element, so
    ``h = 8 * digest_bytes / (width + 1)`` and the product
    ``h * k * N * (3w - 1) * (w + 1)`` collapses algebraically to
    ``8 * digest_bytes * k * N * (3w - 1)`` — an exact integer, which is why
    auditors can demand a bit-for-bit match.  Evaluated in integer
    arithmetic here (going through the float ``h`` would reintroduce
    rounding for widths where ``w + 1`` is not a power of two).
    """
    return 8 * digest_bytes * n_channels * n_users * (3 * width - 1)


@dataclass(frozen=True)
class CommCostReport:
    """Predicted vs measured transmission volume for one auction round."""

    n_users: int
    n_channels: int
    width: int
    digest_bytes: int
    predicted_bits: float
    measured_masked_bits: int
    measured_total_bits: int

    @property
    def prediction_error(self) -> float:
        """Relative deviation of the measured prefix material from Theorem 4."""
        return (
            self.measured_masked_bits - self.predicted_bits
        ) / self.predicted_bits

    def as_row(self) -> dict:
        """Flat dict for table emission by the benchmark harness."""
        return {
            "N": self.n_users,
            "k": self.n_channels,
            "w": self.width,
            "predicted_kbits": round(self.predicted_bits / 1000, 1),
            "measured_kbits": round(self.measured_masked_bits / 1000, 1),
            "total_kbits": round(self.measured_total_bits / 1000, 1),
            "error": round(self.prediction_error, 4),
        }


def measure_bid_cost(
    submissions: Sequence[BidSubmission], scale: BidScale
) -> CommCostReport:
    """Compare one round's bid submissions against Theorem 4."""
    if not submissions:
        raise ValueError("need at least one submission")
    n_users = len(submissions)
    n_channels = submissions[0].n_channels
    digest_bytes = submissions[0].channel_bids[0].family.digest_bytes
    width = scale.width
    return CommCostReport(
        n_users=n_users,
        n_channels=n_channels,
        width=width,
        digest_bytes=digest_bytes,
        predicted_bits=predicted_bid_bits(n_users, n_channels, width, digest_bytes),
        measured_masked_bits=sum(s.masked_set_bytes() for s in submissions) * 8,
        measured_total_bits=sum(s.wire_bytes() for s in submissions) * 8,
    )


def measure_location_cost(submissions: Sequence[LocationSubmission]) -> int:
    """Total location-submission bytes (no closed form in the paper)."""
    return sum(s.wire_bytes() for s in submissions)
