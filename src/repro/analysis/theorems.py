"""Closed-form results of section IV.C.3 / IV.C.4 (Theorems 1-4).

Each theorem is implemented twice where that is meaningful:

* ``theoremN_paper`` — a verbatim transcription of the printed formula;
* ``theoremN_exact`` — our own derivation from first principles (direct
  probability sums), used to cross-check the printed combinatorics.

Theorem 1's printed formula is exactly right (it is the closed form of the
binomial sum).  Theorem 2's second term prints a tie-breaking factor
``(j-1)/j`` where first-principles counting gives ``1 - (t-k)/(j+1)``; the
two coincide only for ``t - k = 1`` with the class size off by one.  Both
are provided and the Monte-Carlo validator in
:mod:`repro.analysis.montecarlo` arbitrates (see EXPERIMENTS.md).

Notation (shared by all): one channel receives bids ``b_1 <= ... <= b_N``
(``b_N`` the largest), plus ``m`` zero bids, each independently disguised as
value ``r`` with probability ``p_r`` (``r = 0..bmax``); ``p_0`` keeps the
zero.  The auctioneer picks either the single maximum (Thm 1) or the
``t``-largest (Thm 2/3).
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "theorem1_paper",
    "theorem1_exact",
    "theorem2_paper",
    "theorem2_exact",
    "theorem3_paper",
    "theorem4_bits",
]


def _check_probs(probs: Sequence[float]) -> None:
    if not probs:
        raise ValueError("need at least p_0")
    if any(p < 0 for p in probs):
        raise ValueError("probabilities must be non-negative")
    if abs(sum(probs) - 1.0) > 1e-9:
        raise ValueError("zero-replacement probabilities must sum to 1")


def _comb(n: int, k: int) -> int:
    """Binomial coefficient that is 0 outside the Pascal triangle."""
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def theorem1_paper(b_n: int, m: int, probs: Sequence[float]) -> float:
    """Theorem 1: probability that no zero bid wins the channel.

    ``b_n`` is the largest true bid, ``m`` the number of zero bids, and
    ``probs[r] = p_r`` the substitution law (index 0..bmax).  Ties at
    ``b_n`` are broken uniformly among the tied bids.
    """
    _check_probs(probs)
    if m < 0:
        raise ValueError("m must be non-negative")
    if not 0 <= b_n < len(probs):
        raise ValueError("b_n must index into probs")
    if m == 0:
        return 1.0
    s_above = sum(probs[b_n + 1:])
    q = probs[b_n]
    a = 1.0 - s_above - q  # P(one disguise < b_n)
    if q == 0.0:
        return a**m
    return ((1.0 - s_above) ** (m + 1) - a ** (m + 1)) / ((m + 1) * q)


def theorem1_exact(b_n: int, m: int, probs: Sequence[float]) -> float:
    """Direct binomial sum the paper's closed form collapses.

    P(no zero wins) = Σ_k C(m, k) q^k a^(m-k) / (k + 1): exactly ``k``
    disguises tie at ``b_n`` (none above), and the true ``b_n`` survives the
    uniform (k+1)-way tie-break.
    """
    _check_probs(probs)
    if m < 0:
        raise ValueError("m must be non-negative")
    if not 0 <= b_n < len(probs):
        raise ValueError("b_n must index into probs")
    s_above = sum(probs[b_n + 1:])
    q = probs[b_n]
    a = 1.0 - s_above - q
    return sum(
        _comb(m, k) * q**k * a ** (m - k) / (k + 1) for k in range(m + 1)
    )


def theorem2_paper(
    b_n: int, m: int, t: int, probs: Sequence[float]
) -> float:
    """Theorem 2 as printed: P(the t-largest prices are all zeros).

    The auctioneer keeps ``t`` bids and infers channel availability for
    those bidders; "no leakage" means every kept bid was a disguised zero.
    Requires ``m > t`` as the paper assumes.
    """
    _check_probs(probs)
    if not 0 < t <= m:
        raise ValueError("need 0 < t <= m")
    if not 0 <= b_n < len(probs):
        raise ValueError("b_n must index into probs")
    s_above = sum(probs[b_n + 1:])
    s_at_or_below = sum(probs[: b_n + 1])
    s_below = sum(probs[:b_n])
    q = probs[b_n]

    first = sum(
        _comb(m, k) * s_above**k * s_at_or_below ** (m - k)
        for k in range(t, m + 1)
    )
    second = 0.0
    for k in range(0, t):
        inner = 0.0
        for j in range(t - k, m - k + 1):
            if j == 0:
                continue
            inner += (
                (j - 1) / j
                * _comb(m - k, j)
                * s_below ** (m - k - j)
                * q**j
            )
        second += _comb(m, k) * s_above**k * inner
    return first + second


def theorem2_exact(
    b_n: int, m: int, t: int, probs: Sequence[float]
) -> float:
    """First-principles version of Theorem 2.

    Split on ``k`` = #disguises strictly above ``b_n`` and ``j`` = #ties at
    ``b_n``.  For ``k < t`` the auctioneer fills the remaining ``t - k``
    slots uniformly from the tie class of ``j`` zeros plus the one true
    ``b_n``; all-zero selections have probability ``1 - (t-k)/(j+1)``.
    """
    _check_probs(probs)
    if not 0 < t <= m:
        raise ValueError("need 0 < t <= m")
    if not 0 <= b_n < len(probs):
        raise ValueError("b_n must index into probs")
    s_above = sum(probs[b_n + 1:])
    s_below = sum(probs[:b_n])
    q = probs[b_n]

    total = sum(
        _comb(m, k) * s_above**k * (1.0 - s_above) ** (m - k)
        for k in range(t, m + 1)
    )
    for k in range(0, t):
        for j in range(t - k, m - k + 1):
            p_config = (
                _comb(m, k)
                * s_above**k
                * _comb(m - k, j)
                * q**j
                * s_below ** (m - k - j)
            )
            total += p_config * (1.0 - (t - k) / (j + 1))
    return total


def theorem3_paper(
    bids_sorted: Sequence[int], m: int, t: int, bmax: int
) -> float:
    """Theorem 3 as printed: E[#true bids kept] under uniform disguise.

    ``bids_sorted`` are the non-zero bids in ascending order (so
    ``bids_sorted[-mu]`` is the paper's ``b_{N-mu}`` ... the mu-th largest);
    every zero is disguised uniformly: ``p_r = 1/(1+bmax)`` for all r.

    The printed expression involves several implicit conventions; it is
    transcribed verbatim (with out-of-range binomials set to zero) and
    compared against the Monte-Carlo ground truth rather than trusted.
    """
    if not bids_sorted:
        raise ValueError("need at least one non-zero bid")
    if any(b <= 0 for b in bids_sorted):
        raise ValueError("bids_sorted must contain positive bids only")
    if list(bids_sorted) != sorted(bids_sorted):
        raise ValueError("bids_sorted must be ascending")
    if not 0 < t:
        raise ValueError("t must be positive")
    if m < 0:
        raise ValueError("m must be non-negative")
    if bmax < max(bids_sorted):
        raise ValueError("bmax must bound the bids")

    p = 1.0 / (1.0 + bmax)
    expectation = 0.0
    for mu in range(1, min(t, len(bids_sorted)) + 1):
        b_n_mu = bids_sorted[-mu]  # the paper's b_{N-mu}
        outer = _comb(bmax - b_n_mu - mu, t - mu)
        if outer == 0:
            continue
        inner = 0.0
        for j in range(t - mu, m + 1):
            core = 0
            for i in range(0, j - t + mu + 1):
                core += (
                    _comb(j, i)
                    * _comb(i + mu - 1, mu - 1)
                    * _comb(j - i - 1, t - mu - 1)
                )
            inner += _comb(m, j) * core * (1 + b_n_mu) ** (m - j)
        expectation += mu * (p**m) * outer * inner
    return expectation


def theorem4_bits(n_users: int, n_channels: int, width: int, h: float) -> float:
    """Theorem 4: advanced bid submission cost, ``h * k * N * (3w-1) * (w+1)``.

    ``width`` is the bit length ``w`` of the (expanded) bid domain and ``h``
    the ratio of HMAC-output length to prefix length: with digests truncated
    to ``d`` bytes, ``h = 8d / (w + 1)``.
    """
    if n_users < 1 or n_channels < 1:
        raise ValueError("need at least one user and one channel")
    if width < 1:
        raise ValueError("width must be >= 1")
    if h <= 0:
        raise ValueError("h must be positive")
    return h * n_channels * n_users * (3 * width - 1) * (width + 1)
