"""Per-channel coverage maps and quality statistics.

This is the reconstruction of the paper's FCC / TVFool data product: for
every channel ``r`` and every cell ``(m, n)``,

* the received PU signal strength ``RSS_r(m, n)`` in dBm,
* binary *availability* (the cell lies in ``C_r``, the complement of the
  PU's protected coverage: ``RSS <= threshold``), and
* the *quality statistic* ``q*_r(m, n)`` in ``[0, 1]`` on available cells.

Quality is the normalised protection margin ``(threshold - RSS) / scale``:
the further the PU signal sits below the interference threshold, the cleaner
the white-space channel.  BPM only ever uses per-cell quality *ratios*, so
any monotone map of the margin produces the same attack behaviour; the
normalisation just keeps bids in a convenient integer range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

import numpy as np

from repro.geo.grid import Cell, GridSpec
from repro.geo.propagation import PRACTICAL_THRESHOLD_DBM, PropagationModel
from repro.geo.terrain import shadowing_field
from repro.geo.transmitters import Transmitter

__all__ = ["ChannelCoverage", "CoverageMap", "build_channel_coverage"]

#: dB of protection margin that maps to quality 1.0.
QUALITY_SCALE_DB = 40.0


@dataclass(frozen=True)
class ChannelCoverage:
    """Coverage data for a single channel over the whole grid."""

    channel: int
    rss_dbm: np.ndarray
    threshold_dbm: float

    def __post_init__(self) -> None:
        if self.rss_dbm.ndim != 2:
            raise ValueError("rss_dbm must be a 2-D (rows x cols) array")

    @property
    def available(self) -> np.ndarray:
        """Boolean mask of ``C_r``: cells where an SU may transmit."""
        return self.rss_dbm <= self.threshold_dbm

    @property
    def covered(self) -> np.ndarray:
        """Boolean mask of the PU's protected coverage (unavailable cells)."""
        return ~self.available

    @property
    def quality(self) -> np.ndarray:
        """``q*_r(m, n)``: normalised protection margin, 0 on covered cells."""
        margin = np.clip(self.threshold_dbm - self.rss_dbm, 0.0, QUALITY_SCALE_DB)
        return margin / QUALITY_SCALE_DB

    def is_available(self, cell: Cell) -> bool:
        """True when an SU at ``cell`` may use this channel."""
        return bool(self.available[cell])

    def quality_at(self, cell: Cell) -> float:
        """The quality statistic ``q*_r`` at one cell."""
        return float(self.quality[cell])

    def availability_fraction(self) -> float:
        """Fraction of the area where this channel is usable."""
        return float(self.available.mean())


def build_channel_coverage(
    grid: GridSpec,
    transmitters: Sequence[Transmitter],
    model: PropagationModel,
    *,
    shadow_rng: np.random.Generator,
    sigma_db: float,
    correlation_km: float,
    threshold_dbm: float = PRACTICAL_THRESHOLD_DBM,
) -> ChannelCoverage:
    """Compute one channel's RSS grid from its towers.

    Multiple towers combine by power addition in the linear (milliwatt)
    domain; each tower shares the channel's shadowing field (the terrain is
    the terrain, regardless of which tower the signal comes from).
    """
    if not transmitters:
        raise ValueError("a channel needs at least one transmitter")
    channels = {t.channel for t in transmitters}
    if len(channels) != 1:
        raise ValueError("all transmitters must share one channel index")

    yy, xx = grid.centers_km()
    shadow = shadowing_field(
        grid, shadow_rng, sigma_db=sigma_db, correlation_km=correlation_km
    )
    total_mw = np.zeros((grid.rows, grid.cols))
    for tx in transmitters:
        dist = np.hypot(yy - tx.y_km, xx - tx.x_km)
        rss = model.received_dbm(tx.power_dbm, dist, shadow)
        total_mw += 10.0 ** (rss / 10.0)
    rss_dbm = 10.0 * np.log10(np.maximum(total_mw, 1e-30))
    return ChannelCoverage(
        channel=channels.pop(), rss_dbm=rss_dbm, threshold_dbm=threshold_dbm
    )


@dataclass(frozen=True)
class CoverageMap:
    """All channels' coverage over one study area."""

    grid: GridSpec
    channels: List[ChannelCoverage] = field(default_factory=list)

    def __post_init__(self) -> None:
        for idx, cov in enumerate(self.channels):
            if cov.channel != idx:
                raise ValueError(
                    f"channel list must be dense: slot {idx} holds {cov.channel}"
                )
            if cov.rss_dbm.shape != (self.grid.rows, self.grid.cols):
                raise ValueError("coverage grid shape mismatch")

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def available_set(self, cell: Cell) -> Set[int]:
        """``AS(cell)``: channels an SU at this cell may bid on."""
        self.grid.require(cell)
        return {cov.channel for cov in self.channels if cov.available[cell]}

    def quality_vector(self, cell: Cell) -> np.ndarray:
        """Per-channel quality at one cell (0 where unavailable)."""
        self.grid.require(cell)
        return np.array([cov.quality[cell] for cov in self.channels])

    def availability_stack(self) -> np.ndarray:
        """(k x rows x cols) boolean availability tensor — the attacker's C_r."""
        return np.stack([cov.available for cov in self.channels])

    def quality_stack(self) -> np.ndarray:
        """(k x rows x cols) quality tensor — the attacker's q*_r(m, n)."""
        return np.stack([cov.quality for cov in self.channels])

    def subset(self, n_channels: int) -> "CoverageMap":
        """The first ``n_channels`` channels (used by the Fig. 4 sweeps)."""
        if not 1 <= n_channels <= self.n_channels:
            raise ValueError(
                f"n_channels must be in 1..{self.n_channels}, got {n_channels}"
            )
        return CoverageMap(grid=self.grid, channels=self.channels[:n_channels])

    def ascii_map(self, channel: int, *, covered_char: str = "#",
                  available_char: str = ".") -> str:
        """Text rendering of one channel's coverage (our Fig. 1(b))."""
        cov = self.channels[channel]
        rows = []
        for m in range(self.grid.rows):
            rows.append(
                "".join(
                    covered_char if cov.covered[m, n] else available_char
                    for n in range(self.grid.cols)
                )
            )
        return "\n".join(rows)
