"""Grid-bucket spatial prefilter for conflict-pair discovery.

The paper's conflict predicate (:func:`repro.auction.conflict.cells_conflict`)
is local: users at cells ``(m_i, n_i)`` and ``(m_j, n_j)`` conflict iff
``|m_i - m_j| < 2λ`` and ``|n_i - n_j| < 2λ``.  Testing every unordered pair
is Θ(N²) — at 100k SUs that is ~5·10⁹ pair tests, regardless of how fast a
single masked membership check is.  But the predicate can only hold for
users whose cells are close, so an ``ST_DWithin``-style bucket index prunes
almost every pair up front.

Bucketing argument (soundness)
------------------------------
Partition the plane into square buckets of side ``L = 2λ``:
``bucket(m, n) = (m // L, n // L)``.  Take any two cells in buckets whose
indices differ by ``>= 2`` on some axis, say ``m_i // L = a`` and
``m_j // L >= a + 2``.  Then ``m_i <= aL + L - 1`` and
``m_j >= (a + 2) L``, so ``m_j - m_i >= L + 1 > L > 2λ - 1``, i.e.
``|m_i - m_j| >= 2λ`` and the pair *cannot* conflict.  Contrapositive:
every conflicting pair lies in the same bucket or in axis-adjacent buckets
(index delta ``<= 1`` per axis).  :func:`candidate_pairs` therefore yields a
**superset** of the true conflict pairs — the exact predicate (plaintext or
masked-membership) still decides each candidate, so the resulting edge set
is identical to the all-pairs scan, never merely approximate.

Completeness of the enumeration: for each user ``i`` (in id order) the
generator collects every user ``j > i`` from the 3×3 bucket neighbourhood of
``i``'s bucket, so each unordered candidate pair ``(i, j)`` with ``i < j``
is yielded exactly once, in deterministic ``(i, j)``-sorted order.

Cost: bucketing is O(N); enumeration is O(N · k) where ``k`` is the
occupancy of a 3×3 neighbourhood.  At the evaluation's density (N ≈ grid
cells / 10, ``2λ = 6``) that is ~32 candidates per user — at 100k SUs the
pair count drops from ~5·10⁹ to ~1.6·10⁶.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.geo.grid import Cell

__all__ = ["bucket_of", "bucket_index", "candidate_pairs"]

#: A bucket address: cell coordinates integer-divided by the bucket side.
Bucket = Tuple[int, int]


def bucket_of(cell: Cell, two_lambda: int) -> Bucket:
    """The bucket containing ``cell``, for buckets of side ``2λ``."""
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    return (cell[0] // two_lambda, cell[1] // two_lambda)


def bucket_index(
    cells: Sequence[Cell], two_lambda: int
) -> Dict[Bucket, List[int]]:
    """Map each occupied bucket to the user ids located in it (id order)."""
    index: Dict[Bucket, List[int]] = {}
    for user, cell in enumerate(cells):
        index.setdefault(bucket_of(cell, two_lambda), []).append(user)
    return index


def candidate_pairs(
    cells: Sequence[Cell], two_lambda: int
) -> Iterator[Tuple[int, int]]:
    """All plausibly-conflicting unordered pairs, each yielded once.

    Yields ``(i, j)`` with ``i < j`` in ascending ``(i, j)`` order, covering
    every pair whose cells share a bucket or sit in adjacent buckets — a
    sound superset of the pairs satisfying the ``|Δ| < 2λ`` conflict
    predicate (see the module docstring for the argument).  Callers apply
    the exact predicate to each candidate; pairs not yielded are guaranteed
    non-conflicting.
    """
    index = bucket_index(cells, two_lambda)
    for i, cell in enumerate(cells):
        bm, bn = bucket_of(cell, two_lambda)
        later: List[int] = []
        for dm in (-1, 0, 1):
            for dn in (-1, 0, 1):
                occupants = index.get((bm + dm, bn + dn))
                if occupants is None:
                    continue
                later.extend(j for j in occupants if j > i)
        later.sort()
        for j in later:
            yield (i, j)
