"""Spectrum sensing: the SU's *other* way of learning channel conditions.

The paper's initial phase lets an SU evaluate channels "through spectrum
sensing or database query".  The database path is
:class:`~repro.geo.database.GeoLocationDatabase`; this module provides the
sensing path: an energy detector that measures the PU's received power at
the SU's cell through noise, averages a configurable number of samples, and
derives (a) an availability verdict against the regulatory threshold and
(b) a quality estimate on the same normalised scale the database uses.

Sensing error is what the paper's bid noise ``|eta| <= 20%`` abstracts, and
what makes the BPM attack's dq-matching imperfect; generating bids from
sensed (rather than oracle) qualities exercises that pipeline end to end.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Set

from repro.geo.coverage import QUALITY_SCALE_DB
from repro.geo.database import GeoLocationDatabase
from repro.geo.grid import Cell

__all__ = ["EnergyDetector", "SensingReport"]


@dataclass(frozen=True)
class SensingReport:
    """One channel's sensing outcome at one cell."""

    channel: int
    measured_dbm: float
    available: bool
    quality_estimate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality_estimate <= 1.0:
            raise ValueError("quality estimate must lie in [0, 1]")


@dataclass(frozen=True)
class EnergyDetector:
    """A sample-averaging energy detector.

    Attributes
    ----------
    noise_sigma_db:
        Per-sample measurement noise standard deviation in dB (receiver
        noise, fast fading residue).
    n_samples:
        Samples averaged per channel; the effective noise shrinks with
        ``sqrt(n_samples)``.
    threshold_dbm:
        The regulatory availability threshold the verdict is taken against.
    """

    noise_sigma_db: float = 3.0
    n_samples: int = 8
    threshold_dbm: float = -81.0

    def __post_init__(self) -> None:
        if self.noise_sigma_db < 0:
            raise ValueError("noise sigma must be non-negative")
        if self.n_samples < 1:
            raise ValueError("need at least one sample")

    @property
    def effective_sigma_db(self) -> float:
        """Post-averaging measurement noise."""
        return self.noise_sigma_db / math.sqrt(self.n_samples)

    def sense_channel(
        self,
        database: GeoLocationDatabase,
        cell: Cell,
        channel: int,
        rng: random.Random,
    ) -> SensingReport:
        """Measure one channel at one cell.

        The true RSS comes from the coverage map (that *is* the radio
        environment); the detector adds averaged Gaussian noise, compares
        to the threshold, and converts the protection margin to the
        normalised quality scale.
        """
        true_dbm = float(database.coverage.channels[channel].rss_dbm[cell])
        measured = true_dbm + rng.gauss(0.0, self.effective_sigma_db)
        available = measured <= self.threshold_dbm
        margin = min(max(self.threshold_dbm - measured, 0.0), QUALITY_SCALE_DB)
        return SensingReport(
            channel=channel,
            measured_dbm=measured,
            available=available,
            quality_estimate=margin / QUALITY_SCALE_DB,
        )

    def sense_all(
        self, database: GeoLocationDatabase, cell: Cell, rng: random.Random
    ) -> List[SensingReport]:
        """Sweep every channel at one cell."""
        database.coverage.grid.require(cell)
        return [
            self.sense_channel(database, cell, channel, rng)
            for channel in range(database.n_channels)
        ]

    def available_set(
        self, database: GeoLocationDatabase, cell: Cell, rng: random.Random
    ) -> Set[int]:
        """The sensed counterpart of the database's availability query.

        Unlike the database answer this can *miss-detect*: a cell near the
        coverage contour may be declared available when it is not (harmful
        interference) or vice versa (lost opportunity).  The false rates
        are a pure function of the margin distribution and the effective
        noise.
        """
        return {
            report.channel
            for report in self.sense_all(database, cell, rng)
            if report.available
        }
