"""Geo-location spectrum database.

The paper's SUs learn channel availability and quality "through spectrum
sensing or database query", and its *attacker* is assumed to hold "all the
real quality statistics of each channel in each cell (it could obtain this
information from a geo-location database)".  This module is that database:
a thin query layer over a :class:`~repro.geo.coverage.CoverageMap` serving
both honest SUs (what can I use here, and how good is it?) and the adversary
(the full ``C_r`` / ``q*`` tensors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from repro.geo.coverage import CoverageMap
from repro.geo.grid import Cell

__all__ = ["GeoLocationDatabase"]


@dataclass(frozen=True)
class GeoLocationDatabase:
    """Availability / quality oracle over one study area."""

    coverage: CoverageMap

    @property
    def n_channels(self) -> int:
        return self.coverage.n_channels

    def available_channels(self, cell: Cell) -> Set[int]:
        """Channels usable at ``cell`` (the SU-facing query)."""
        return self.coverage.available_set(cell)

    def channel_quality(self, cell: Cell, channel: int) -> float:
        """Quality of one channel at one cell; 0 when unavailable."""
        if not 0 <= channel < self.n_channels:
            raise IndexError(f"channel {channel} outside 0..{self.n_channels - 1}")
        return self.coverage.channels[channel].quality_at(cell)

    def query(self, cell: Cell) -> Dict[int, float]:
        """The full SU query result: {channel: quality} for available channels."""
        qualities = self.coverage.quality_vector(cell)
        return {
            ch: float(qualities[ch])
            for ch in sorted(self.available_channels(cell))
        }

    # Attacker-facing bulk views ------------------------------------------------

    def availability_tensor(self) -> np.ndarray:
        """(k x rows x cols) boolean ``C_r`` masks."""
        return self.coverage.availability_stack()

    def quality_tensor(self) -> np.ndarray:
        """(k x rows x cols) ``q*_r(m, n)`` statistics."""
        return self.coverage.quality_stack()

    def cells_matching_availability(self, channels: List[int]) -> np.ndarray:
        """Boolean mask of cells where *all* listed channels are available.

        This is exactly the BCM intersection ``P = A ∩ C_r1 ∩ C_r2 ∩ ...``.
        """
        mask = np.ones((self.coverage.grid.rows, self.coverage.grid.cols), bool)
        tensor = self.availability_tensor()
        for ch in channels:
            if not 0 <= ch < self.n_channels:
                raise IndexError(f"channel {ch} outside 0..{self.n_channels - 1}")
            mask &= tensor[ch]
        return mask
