"""Dataset statistics: the calibration numbers behind the four areas.

DESIGN.md explains *why* the areas are shaped the way they are (boundary
channels carry the attacker's information; covered-everywhere channels
waste winners); this module measures those shape parameters from the built
maps so the claims are auditable artifacts, not prose.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.geo.coverage import CoverageMap
from repro.geo.datasets import AREA_CONFIGS, make_coverage_map
from repro.geo.grid import GridSpec

__all__ = ["channel_mode_counts", "area_summary_table"]

#: Availability fractions outside (lo, hi) classify as covered / clear.
_BOUNDARY_BAND = (0.03, 0.97)


def channel_mode_counts(coverage_map: CoverageMap) -> Dict[str, int]:
    """Classify every channel as covered / boundary / clear by availability."""
    lo, hi = _BOUNDARY_BAND
    counts = {"covered": 0, "boundary": 0, "clear": 0}
    for channel in coverage_map.channels:
        fraction = channel.availability_fraction()
        if fraction <= lo:
            counts["covered"] += 1
        elif fraction >= hi:
            counts["clear"] += 1
        else:
            counts["boundary"] += 1
    return counts


def area_summary_table(
    *,
    areas: Sequence[int] = (1, 2, 3, 4),
    n_channels: int = 129,
    grid: GridSpec = GridSpec(),
    seed: str = "lppa-repro",
) -> List[Dict[str, object]]:
    """One row per area: mode mix, availability and quality statistics."""
    rows = []
    for area in areas:
        coverage_map = make_coverage_map(
            area, n_channels=n_channels, grid=grid, seed=seed
        )
        counts = channel_mode_counts(coverage_map)
        availability = np.array(
            [c.availability_fraction() for c in coverage_map.channels]
        )
        quality = coverage_map.quality_stack()
        usable = quality[quality > 0]
        rows.append(
            {
                "area": area,
                "character": AREA_CONFIGS[area].name,
                "covered": counts["covered"],
                "boundary": counts["boundary"],
                "clear": counts["clear"],
                "mean_availability": round(float(availability.mean()), 3),
                "mean_usable_quality": round(float(usable.mean()), 3)
                if usable.size
                else 0.0,
            }
        )
    return rows
