"""The four evaluation areas (synthetic stand-ins for the paper's LA maps).

The paper extracts spectrum availability for four 75 km x 75 km Los Angeles
areas (129 TV channels, TVFool/FCC data) and observes that its attacks work
better in rural districts than urban ones "due to the influence of terrain
factor".  The discriminative power of the BCM attack is carried entirely by
*boundary channels* — channels whose protected-coverage contour crosses the
study area.  A channel that blankets the whole area cannot be bid at all; a
channel clear over the whole area is bid from everywhere; neither shrinks
the intersection.  Within a 75 km box most real TV channels are one of
those two, with a minority of contours actually crossing.

Each channel therefore draws one of three modes:

* **covered** — a high-power tower inside the area; protected everywhere;
* **clear**   — the tower sits far enough away that the whole area lies in
  the coverage complement ``C_r`` (up to shadowing patches);
* **boundary** — tower distance and power chosen so the contour crosses the
  area: this is where the attacker's information lives.

The four areas differ in their mode mix and terrain roughness:

=======  ===========  =========================  =============================
Area     Character    Boundary-channel fraction  Effect on the attacks
=======  ===========  =========================  =============================
1        urban core   low + rough terrain        weak BCM (large outputs)
2        suburban     lowest                     weakest (paper plots it only
         basin                                   partially for this reason)
3        mixed        medium                     the LPPA evaluation area
4        rural        highest + smooth terrain   strongest BCM/BPM (Fig. 4)
=======  ===========  =========================  =============================

All maps are deterministic functions of (area number, master seed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.geo.coverage import CoverageMap, build_channel_coverage
from repro.geo.database import GeoLocationDatabase
from repro.geo.grid import GridSpec
from repro.geo.propagation import PRACTICAL_THRESHOLD_DBM, PropagationModel
from repro.geo.transmitters import Transmitter
from repro.utils.rng import numpy_rng, spawn_rng

__all__ = [
    "AreaConfig",
    "clear_coverage_cache",
    "AREA_CONFIGS",
    "N_LA_CHANNELS",
    "make_coverage_map",
    "make_database",
    "cached_database",
]

#: Number of TV channels in the paper's LA dataset.
N_LA_CHANNELS = 129


@dataclass(frozen=True)
class AreaConfig:
    """Everything that distinguishes one study area's radio environment.

    ``mode_probs`` is (p_covered, p_clear, p_boundary) and must sum to 1.
    ``boundary_radius_km`` bounds the protected-contour radius of boundary
    channels; ``clear_distance_factor`` places clear channels' towers at
    that multiple of their own radius away from the area centre.
    """

    name: str
    mode_probs: Tuple[float, float, float]
    boundary_radius_km: Tuple[float, float]
    clear_distance_factor: Tuple[float, float]
    sigma_db: float
    correlation_km: float
    path_loss_exponent: float
    threshold_dbm: float = PRACTICAL_THRESHOLD_DBM

    def __post_init__(self) -> None:
        if abs(sum(self.mode_probs) - 1.0) > 1e-9:
            raise ValueError("mode probabilities must sum to 1")
        if any(p < 0 for p in self.mode_probs):
            raise ValueError("mode probabilities must be non-negative")

    def model(self) -> PropagationModel:
        """The area's propagation model."""
        return PropagationModel(path_loss_exponent=self.path_loss_exponent)


AREA_CONFIGS: Dict[int, AreaConfig] = {
    1: AreaConfig(
        name="urban-core",
        mode_probs=(0.04, 0.92, 0.04),
        boundary_radius_km=(35.0, 80.0),
        clear_distance_factor=(1.8, 3.0),
        sigma_db=8.0,
        correlation_km=4.0,
        path_loss_exponent=3.8,
    ),
    2: AreaConfig(
        name="suburban-basin",
        mode_probs=(0.03, 0.94, 0.03),
        boundary_radius_km=(40.0, 80.0),
        clear_distance_factor=(2.2, 3.5),
        sigma_db=6.0,
        correlation_km=8.0,
        path_loss_exponent=3.5,
    ),
    3: AreaConfig(
        name="mixed",
        mode_probs=(0.03, 0.79, 0.18),
        boundary_radius_km=(35.0, 85.0),
        clear_distance_factor=(2.0, 3.2),
        sigma_db=6.0,
        correlation_km=8.0,
        path_loss_exponent=3.5,
    ),
    4: AreaConfig(
        name="rural",
        mode_probs=(0.02, 0.63, 0.35),
        boundary_radius_km=(30.0, 85.0),
        clear_distance_factor=(2.2, 4.0),
        sigma_db=4.0,
        correlation_km=12.0,
        path_loss_exponent=3.5,
    ),
}


def _power_for_radius(model: PropagationModel, radius_km: float,
                      threshold_dbm: float) -> float:
    """ERP such that the median contour at ``threshold_dbm`` has this radius."""
    if radius_km < model.reference_km:
        raise ValueError("radius below the model's reference distance")
    return (
        threshold_dbm
        + model.reference_loss_db
        + 10.0 * model.path_loss_exponent * math.log10(radius_km / model.reference_km)
    )


def _place_channel(
    grid: GridSpec,
    config: AreaConfig,
    model: PropagationModel,
    channel: int,
    rng: random.Random,
) -> List[Transmitter]:
    """Draw a mode for one channel and place its tower(s) accordingly."""
    height_km, width_km = grid.extent_km
    cy, cx = height_km / 2.0, width_km / 2.0
    diag_km = math.hypot(height_km, width_km)
    p_covered, p_clear, _ = config.mode_probs
    draw = rng.random()

    if draw < p_covered:
        # Tower inside the area, radius comfortably past the far corner.
        radius = diag_km * rng.uniform(1.3, 2.0)
        return [
            Transmitter(
                y_km=rng.uniform(0.15 * height_km, 0.85 * height_km),
                x_km=rng.uniform(0.15 * width_km, 0.85 * width_km),
                power_dbm=_power_for_radius(model, radius, config.threshold_dbm),
                channel=channel,
            )
        ]

    if draw < p_covered + p_clear:
        # Tower far enough away that the whole area sits outside the contour.
        radius = rng.uniform(*config.boundary_radius_km)
        distance = radius * rng.uniform(*config.clear_distance_factor) + diag_km / 2.0
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return [
            Transmitter(
                y_km=cy + distance * math.sin(angle),
                x_km=cx + distance * math.cos(angle),
                power_dbm=_power_for_radius(model, radius, config.threshold_dbm),
                channel=channel,
            )
        ]

    # Boundary: the contour crosses the area.
    radius = rng.uniform(*config.boundary_radius_km)
    distance = radius * rng.uniform(0.35, 1.15)
    angle = rng.uniform(0.0, 2.0 * math.pi)
    return [
        Transmitter(
            y_km=cy + distance * math.sin(angle),
            x_km=cx + distance * math.cos(angle),
            power_dbm=_power_for_radius(model, radius, config.threshold_dbm),
            channel=channel,
        )
    ]


#: Memo of built coverage maps.  Maps are immutable and deterministic in
#: (area, n_channels, grid, seed), and the experiment harnesses rebuild the
#: same areas many times, so caching is safe and saves minutes per run.
_MAP_CACHE: Dict[tuple, CoverageMap] = {}


#: Memo of wrapped databases, keyed like the map cache.  The wrapper itself
#: is cheap, but the parallel sweep engine's trial functions hit this once
#: per trial, and a stable identity keeps any object-keyed caches warm
#: within a worker process.
_DB_CACHE: Dict[tuple, GeoLocationDatabase] = {}


def clear_coverage_cache() -> None:
    """Drop all memoised coverage maps (mainly for memory-sensitive tests)."""
    _MAP_CACHE.clear()
    _DB_CACHE.clear()


def make_coverage_map(
    area: int,
    *,
    n_channels: int = N_LA_CHANNELS,
    grid: GridSpec = GridSpec(),
    seed: str = "lppa-repro",
) -> CoverageMap:
    """Build (or fetch the memoised) coverage map for one of the four areas."""
    key = (area, n_channels, grid, seed)
    cached = _MAP_CACHE.get(key)
    if cached is not None:
        return cached
    # A larger channel count subsumes smaller ones (channel i's map does not
    # depend on how many channels are built), so slice when possible.
    for (c_area, c_channels, c_grid, c_seed), cmap in _MAP_CACHE.items():
        if (c_area, c_grid, c_seed) == (area, grid, seed) and c_channels >= n_channels:
            subset = cmap.subset(n_channels)
            _MAP_CACHE[key] = subset
            return subset
    built = _build_coverage_map(area, n_channels=n_channels, grid=grid, seed=seed)
    _MAP_CACHE[key] = built
    return built


def _build_coverage_map(
    area: int,
    *,
    n_channels: int,
    grid: GridSpec,
    seed: str,
) -> CoverageMap:
    if area not in AREA_CONFIGS:
        raise ValueError(f"area must be one of {sorted(AREA_CONFIGS)}, got {area}")
    if n_channels < 1:
        raise ValueError("n_channels must be >= 1")
    config = AREA_CONFIGS[area]
    model = config.model()
    channels = []
    for ch in range(n_channels):
        place_rng = spawn_rng(seed, f"area{area}", f"channel{ch}", "towers")
        towers = _place_channel(grid, config, model, ch, place_rng)
        shadow_rng = numpy_rng(seed, f"area{area}", f"channel{ch}", "shadow")
        channels.append(
            build_channel_coverage(
                grid,
                towers,
                model,
                shadow_rng=shadow_rng,
                sigma_db=config.sigma_db,
                correlation_km=config.correlation_km,
                threshold_dbm=config.threshold_dbm,
            )
        )
    return CoverageMap(grid=grid, channels=channels)


def make_database(
    area: int,
    *,
    n_channels: int = N_LA_CHANNELS,
    grid: GridSpec = GridSpec(),
    seed: str = "lppa-repro",
) -> GeoLocationDatabase:
    """Coverage map wrapped in the query layer both SUs and attacker use."""
    return GeoLocationDatabase(
        make_coverage_map(area, n_channels=n_channels, grid=grid, seed=seed)
    )


def cached_database(
    area: int,
    *,
    n_channels: int = N_LA_CHANNELS,
    grid: GridSpec = GridSpec(),
    seed: str = "lppa-repro",
) -> GeoLocationDatabase:
    """Per-process memoised :func:`make_database`.

    The engine's worker processes call this once per trial; the underlying
    coverage map (the genuinely expensive artifact) is built at most once
    per worker per (area, channels, grid, seed) and shared thereafter.
    Treat the result as read-only, exactly like the session fixtures.
    """
    key = (area, n_channels, grid, seed)
    cached = _DB_CACHE.get(key)
    if cached is None:
        cached = make_database(area, n_channels=n_channels, grid=grid, seed=seed)
        _DB_CACHE[key] = cached
    return cached
