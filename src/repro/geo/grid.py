"""Grid geometry: the 75 km x 75 km region divided into 100 x 100 cells.

The paper selects four 75 km x 75 km Los Angeles areas, divides each into a
100 x 100 cell lattice, and identifies a cell by its (row, column) pair
``(m, n)``.  Everything downstream — coverage maps, quality statistics,
attacker posteriors — is indexed by these cells, so this module is the one
place that owns the cell <-> kilometre conversions.

Cells double as the integer location coordinates of the private location
submission protocol: an SU at cell ``(m, n)`` submits the non-negative
integers ``m`` and ``n`` (prefix-masked) as its coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["Cell", "GridSpec"]

Cell = Tuple[int, int]


@dataclass(frozen=True)
class GridSpec:
    """A rectangular cell lattice over a square region.

    Attributes
    ----------
    rows, cols:
        Lattice dimensions (the paper uses 100 x 100).
    cell_km:
        Side length of one cell in kilometres (75 km / 100 = 0.75 km).
    """

    rows: int = 100
    cols: int = 100
    cell_km: float = 0.75

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must have at least one row and column")
        if self.cell_km <= 0:
            raise ValueError("cell_km must be positive")

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    @property
    def extent_km(self) -> Tuple[float, float]:
        """(height, width) of the region in kilometres."""
        return (self.rows * self.cell_km, self.cols * self.cell_km)

    def contains(self, cell: Cell) -> bool:
        """True when ``cell`` lies inside the lattice."""
        m, n = cell
        return 0 <= m < self.rows and 0 <= n < self.cols

    def require(self, cell: Cell) -> None:
        """Raise ``ValueError`` for cells outside the lattice."""
        if not self.contains(cell):
            raise ValueError(f"cell {cell} outside {self.rows}x{self.cols} grid")

    def cells(self) -> Iterator[Cell]:
        """All cells in row-major order."""
        for m in range(self.rows):
            for n in range(self.cols):
                yield (m, n)

    def cell_index(self, cell: Cell) -> int:
        """Row-major flat index of a cell."""
        self.require(cell)
        return cell[0] * self.cols + cell[1]

    def cell_from_index(self, index: int) -> Cell:
        """Inverse of :meth:`cell_index`."""
        if not 0 <= index < self.n_cells:
            raise ValueError(f"index {index} outside grid")
        return divmod(index, self.cols)

    def center_km(self, cell: Cell) -> Tuple[float, float]:
        """Kilometre coordinates of the cell centre, (y, x) = (row, col) axes."""
        self.require(cell)
        m, n = cell
        return ((m + 0.5) * self.cell_km, (n + 0.5) * self.cell_km)

    def centers_km(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrids (rows x cols) of cell-centre y- and x-km coordinates."""
        ys = (np.arange(self.rows) + 0.5) * self.cell_km
        xs = (np.arange(self.cols) + 0.5) * self.cell_km
        yy, xx = np.meshgrid(ys, xs, indexing="ij")
        return yy, xx

    def distance_km(self, a: Cell, b: Cell) -> float:
        """Euclidean centre-to-centre distance between two cells."""
        ay, ax = self.center_km(a)
        by, bx = self.center_km(b)
        return float(np.hypot(ay - by, ax - bx))

    def distance_cells(self, a: Cell, b: Cell) -> float:
        """Euclidean distance in cell units (used by the incorrectness metric)."""
        self.require(a)
        self.require(b)
        return float(np.hypot(a[0] - b[0], a[1] - b[1]))

    def random_cells(self, rng, count: int) -> List[Cell]:
        """``count`` cells drawn uniformly at random (with replacement)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [
            (rng.randrange(self.rows), rng.randrange(self.cols))
            for _ in range(count)
        ]
