"""Persisting coverage maps: build once, reuse across processes.

The 129-channel, 100x100 maps take a couple of seconds each to synthesise;
saving them as compressed ``.npz`` bundles lets separate benchmark /
notebook processes share one build.  The format stores the RSS tensor, the
per-channel thresholds and the grid geometry — everything a
:class:`~repro.geo.coverage.CoverageMap` derives from.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.geo.coverage import ChannelCoverage, CoverageMap
from repro.geo.grid import GridSpec

__all__ = ["save_coverage_map", "load_coverage_map"]

_FORMAT_VERSION = 1


def save_coverage_map(
    coverage_map: CoverageMap, path: Union[str, Path]
) -> Path:
    """Write a coverage map as a compressed ``.npz`` bundle."""
    path = Path(path)
    grid = coverage_map.grid
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        rss=np.stack([c.rss_dbm for c in coverage_map.channels]),
        thresholds=np.array([c.threshold_dbm for c in coverage_map.channels]),
        grid=np.array([grid.rows, grid.cols, grid.cell_km]),
    )
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_coverage_map(path: Union[str, Path]) -> CoverageMap:
    """Read a bundle written by :func:`save_coverage_map`."""
    with np.load(Path(path)) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported coverage bundle version {version}")
        rss = data["rss"]
        thresholds = data["thresholds"]
        rows, cols, cell_km = data["grid"]
    if rss.ndim != 3 or len(thresholds) != rss.shape[0]:
        raise ValueError("malformed coverage bundle")
    grid = GridSpec(rows=int(rows), cols=int(cols), cell_km=float(cell_km))
    channels = [
        ChannelCoverage(
            channel=idx, rss_dbm=rss[idx], threshold_dbm=float(thresholds[idx])
        )
        for idx in range(rss.shape[0])
    ]
    return CoverageMap(grid=grid, channels=channels)
