"""Primary-user (TV) transmitter placement.

Each auctioned channel is licensed to a primary user whose tower(s) may sit
inside or well outside the 75 km x 75 km study area — LA stations on Mount
Wilson cover areas whose centres are tens of kilometres away.  Placement
therefore draws from an enlarged box around the area, and a channel may own
several transmitters (a main station plus translators), which produces the
disconnected coverage blobs visible in the paper's Fig. 1(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.geo.grid import GridSpec

__all__ = ["Transmitter", "place_transmitters"]


@dataclass(frozen=True)
class Transmitter:
    """A single PU tower.

    Coordinates are kilometres in the area's frame (the area spans
    ``[0, extent)`` on each axis; transmitters may lie outside it).
    """

    y_km: float
    x_km: float
    power_dbm: float
    channel: int

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError("channel index must be non-negative")


def place_transmitters(
    grid: GridSpec,
    rng: random.Random,
    channel: int,
    *,
    count: int,
    margin_km: float,
    power_dbm_range: tuple,
) -> List[Transmitter]:
    """Place ``count`` towers for one channel.

    Parameters
    ----------
    grid:
        The study area (defines the placement box).
    rng:
        Per-channel random stream.
    channel:
        Channel index stamped on each tower.
    count:
        Number of towers for this channel (>= 1).
    margin_km:
        How far outside the area towers may sit.
    power_dbm_range:
        (low, high) uniform ERP range in dBm.
    """
    if count < 1:
        raise ValueError("each channel needs at least one transmitter")
    if margin_km < 0:
        raise ValueError("margin_km must be non-negative")
    low, high = power_dbm_range
    if low > high:
        raise ValueError("power range must satisfy low <= high")
    height_km, width_km = grid.extent_km
    return [
        Transmitter(
            y_km=rng.uniform(-margin_km, height_km + margin_km),
            x_km=rng.uniform(-margin_km, width_km + margin_km),
            power_dbm=rng.uniform(low, high),
            channel=channel,
        )
        for _ in range(count)
    ]
