"""Radio propagation: log-distance path loss with shadowing.

The availability threshold and the per-cell quality statistic both derive
from the received primary-user signal strength (RSS) on each cell, so this
module is the physical layer of the whole reproduction.  We use the standard
log-distance model

    RSS(d) = P_tx - [L0 + 10 * n * log10(max(d, d0) / d0)] + X_shadow

with reference loss ``L0`` at ``d0 = 1 km``, path-loss exponent ``n``
(2 = free space, 3.5-4 = cluttered terrain) and a spatially-correlated
shadowing term from :mod:`repro.geo.terrain`.  Parameters are calibrated so
that a 55-75 dBm ERP transmitter covers a 10-50 km radius at the paper's
-81 dBm practical threshold — the scale of real LA TV stations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PropagationModel", "FCC_THRESHOLD_DBM", "PRACTICAL_THRESHOLD_DBM"]

#: FCC unoccupied-channel criterion quoted by the paper.
FCC_THRESHOLD_DBM = -114.0
#: The practical threshold the paper actually uses (after Murty et al. [16]).
PRACTICAL_THRESHOLD_DBM = -81.0


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path loss at a fixed carrier.

    Attributes
    ----------
    reference_loss_db:
        Path loss ``L0`` at the reference distance, in dB.
    path_loss_exponent:
        The exponent ``n``.
    reference_km:
        Reference distance ``d0`` (distances below it are clamped so the
        model never produces +inf gain at a transmitter's own cell).
    """

    reference_loss_db: float = 100.0
    path_loss_exponent: float = 3.5
    reference_km: float = 1.0

    def __post_init__(self) -> None:
        if self.reference_km <= 0:
            raise ValueError("reference_km must be positive")
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")

    def path_loss_db(self, distance_km: np.ndarray) -> np.ndarray:
        """Deterministic path loss in dB at the given distances (km)."""
        d = np.maximum(np.asarray(distance_km, dtype=float), self.reference_km)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * np.log10(
            d / self.reference_km
        )

    def received_dbm(
        self,
        tx_power_dbm: float,
        distance_km: np.ndarray,
        shadowing_db: np.ndarray = 0.0,
    ) -> np.ndarray:
        """Received signal strength in dBm (vectorised over distances)."""
        return tx_power_dbm - self.path_loss_db(distance_km) + shadowing_db

    def coverage_radius_km(
        self, tx_power_dbm: float, threshold_dbm: float
    ) -> float:
        """Distance at which the median (no-shadowing) RSS crosses threshold."""
        margin_db = tx_power_dbm - self.reference_loss_db - threshold_dbm
        if margin_db <= 0:
            return 0.0
        return float(
            self.reference_km * 10.0 ** (margin_db / (10.0 * self.path_loss_exponent))
        )
