"""Radio-environment substrate: grids, propagation, coverage maps, database.

Reconstructs the paper's FCC/TVFool data product synthetically — per-channel
availability regions ``C_r`` and per-cell quality statistics ``q*_r(m, n)``
over four 75 km x 75 km areas gridded into 100 x 100 cells.
"""

from repro.geo.buckets import bucket_index, bucket_of, candidate_pairs
from repro.geo.coverage import ChannelCoverage, CoverageMap, build_channel_coverage
from repro.geo.database import GeoLocationDatabase
from repro.geo.datasets import (
    AREA_CONFIGS,
    AreaConfig,
    N_LA_CHANNELS,
    clear_coverage_cache,
    make_coverage_map,
    cached_database,
    make_database,
)
from repro.geo.grid import Cell, GridSpec
from repro.geo.io import load_coverage_map, save_coverage_map
from repro.geo.sensing import EnergyDetector, SensingReport
from repro.geo.summary import area_summary_table, channel_mode_counts
from repro.geo.propagation import (
    FCC_THRESHOLD_DBM,
    PRACTICAL_THRESHOLD_DBM,
    PropagationModel,
)
from repro.geo.terrain import shadowing_field
from repro.geo.transmitters import Transmitter, place_transmitters

__all__ = [
    "bucket_index",
    "bucket_of",
    "candidate_pairs",
    "ChannelCoverage",
    "CoverageMap",
    "build_channel_coverage",
    "GeoLocationDatabase",
    "AREA_CONFIGS",
    "AreaConfig",
    "N_LA_CHANNELS",
    "clear_coverage_cache",
    "make_coverage_map",
    "cached_database",
    "make_database",
    "Cell",
    "GridSpec",
    "load_coverage_map",
    "save_coverage_map",
    "EnergyDetector",
    "SensingReport",
    "area_summary_table",
    "channel_mode_counts",
    "FCC_THRESHOLD_DBM",
    "PRACTICAL_THRESHOLD_DBM",
    "PropagationModel",
    "shadowing_field",
    "Transmitter",
    "place_transmitters",
]
