"""Small shared utilities: deterministic RNG streams and validation helpers."""

from repro.utils.rng import numpy_rng, spawn_rng, stable_seed
from repro.utils.stats import Summary, bootstrap_ci, summarize

__all__ = [
    "numpy_rng",
    "spawn_rng",
    "stable_seed",
    "Summary",
    "bootstrap_ci",
    "summarize",
]
