"""Small statistics helpers for the experiment harnesses.

Monte-Carlo experiment rows deserve error bars; this module provides the
mean / sample standard deviation / percentile-bootstrap confidence interval
trio without pulling in scipy for the core library.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["Summary", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class Summary:
    """Mean, spread and count of one sample."""

    n: int
    mean: float
    std: float

    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n > 0 else float("nan")


def summarize(values: Sequence[float]) -> Summary:
    """Mean and sample (n-1) standard deviation."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, std=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Summary(n=n, mean=mean, std=math.sqrt(variance))


def bootstrap_ci(
    values: Sequence[float],
    rng: random.Random,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the mean."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    n = len(values)
    means = sorted(
        sum(values[rng.randrange(n)] for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_idx = int(alpha * resamples)
    high_idx = min(resamples - 1, int((1.0 - alpha) * resamples))
    return means[low_idx], means[high_idx]
