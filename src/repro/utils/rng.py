"""Deterministic, label-addressed random streams.

Every stochastic component of the reproduction (terrain, transmitter
placement, SU placement, bid noise, zero-replacement coin flips, allocation
tie-breaks) draws from its own independent stream derived from a master seed
plus a human-readable label path.  This keeps experiments bit-reproducible
while ensuring that, e.g., changing the number of SUs does not perturb the
coverage maps.
"""

from __future__ import annotations

import os
import random
from typing import Union

import numpy as np

from repro.crypto.sha256 import sha256

__all__ = ["stable_seed", "spawn_rng", "numpy_rng", "fresh_rng"]

Seed = Union[int, str, bytes]


def _seed_bytes(seed: Seed) -> bytes:
    if isinstance(seed, bytes):
        return seed
    if isinstance(seed, str):
        return seed.encode("utf-8")
    if isinstance(seed, int):
        return seed.to_bytes((max(seed.bit_length(), 1) + 7) // 8, "big", signed=False)
    raise TypeError(f"unsupported seed type {type(seed)!r}")


def stable_seed(seed: Seed, *labels: str) -> int:
    """A 64-bit seed derived from ``seed`` and a label path.

    Uses the in-repo SHA-256 rather than ``hash()`` so results are stable
    across interpreter runs and versions.
    """
    h = sha256(_seed_bytes(seed))
    for label in labels:
        h.update(b"/")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def spawn_rng(seed: Seed, *labels: str) -> random.Random:
    """An independent ``random.Random`` for the given label path."""
    return random.Random(stable_seed(seed, *labels))


def numpy_rng(seed: Seed, *labels: str) -> np.random.Generator:
    """An independent NumPy ``Generator`` for the given label path."""
    return np.random.default_rng(stable_seed(seed, *labels))


def fresh_rng() -> random.Random:
    """A non-deterministic RNG that is safe to create inside forked workers.

    Seeds from ``os.urandom`` mixed with the current PID at *call* time, so
    two worker processes forked from the same parent can never share a
    stream — unlike the module-level ``random`` functions, whose global
    state is duplicated by ``fork``.  Every ``rng=None`` fallback in the
    protocol paths routes through here; deterministic runs should pass an
    explicit seeded RNG (or use label-addressed ``entropy`` seeding)
    instead.
    """
    return random.Random(os.urandom(16) + os.getpid().to_bytes(8, "big"))
