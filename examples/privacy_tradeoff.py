#!/usr/bin/env python3
"""The privacy / performance dial: choosing the zero-replace probability.

Section IV.C.3: each user picks its disguise intensity ``1 - p0`` to trade
location privacy against auction performance.  This example sweeps the dial
and prints both sides — the anti-LPPA attacker's failure rate and candidate
count, next to the auction's revenue and satisfaction relative to the
non-private baseline — so an operator can pick an operating point.

Run:  python examples/privacy_tradeoff.py
"""

import random

from repro.attacks import lppa_bcm_attack, score_attack
from repro.auction import generate_users, run_plain_auction
from repro.experiments import format_table
from repro.geo import make_database
from repro.lppa import UniformReplacePolicy, run_fast_lppa

SWEEP = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
ATTACK_FRACTION = 0.5
N_USERS = 80


def main() -> None:
    database = make_database(area=3, n_channels=129)
    grid = database.coverage.grid
    users = generate_users(database, N_USERS, random.Random(21))
    plain = run_plain_auction(users, random.Random(0), two_lambda=6)

    rows = []
    for replace_prob in SWEEP:
        result = run_fast_lppa(
            users,
            two_lambda=6,
            bmax=127,
            policy=UniformReplacePolicy(replace_prob),
            rng=random.Random(int(replace_prob * 100)),
        )
        masks = lppa_bcm_attack(
            database, result.rankings, N_USERS, ATTACK_FRACTION
        )
        scores = [
            score_attack(mask, user.cell, grid)
            for mask, user in zip(masks, users)
        ]
        failure = sum(1 for s in scores if s.failed) / len(scores)
        cells = sum(s.n_cells for s in scores) / len(scores)
        outcome = result.outcome
        rows.append(
            {
                "zero_replace": replace_prob,
                "attacker_failure": round(failure, 3),
                "attacker_cells": round(cells, 1),
                "revenue_ratio": round(
                    outcome.sum_of_winning_bids()
                    / plain.sum_of_winning_bids(),
                    3,
                ),
                "satisfaction": round(outcome.user_satisfaction(), 3),
            }
        )

    print(
        format_table(
            rows,
            title=(
                f"Privacy vs performance (Area 3, {N_USERS} SUs, attacker "
                f"keeps top {int(ATTACK_FRACTION * 100)}% per channel)"
            ),
        )
    )
    print(
        "\nReading: privacy (failure, cells) improves down the table while "
        "revenue/satisfaction degrade — pick the row matching your needs."
    )


if __name__ == "__main__":
    main()
