#!/usr/bin/env python3
"""Quickstart: one privacy-preserving spectrum auction, end to end.

Builds a synthetic coverage map (what the paper extracts from FCC/TVFool
data), creates secondary users with truthful bids, and runs the full LPPA
protocol — private location submission, advanced private bid submission,
masked allocation, TTP charging — printing what each party saw.

Run:  python examples/quickstart.py
"""

import random

from repro.auction import generate_users, run_plain_auction
from repro.geo import make_database
from repro.lppa import UniformReplacePolicy, run_lppa_auction


def main() -> None:
    # --- The world: Area 3 (mixed urban/rural), 20 TV channels -----------------
    database = make_database(area=3, n_channels=20)
    grid = database.coverage.grid
    print(f"Coverage map: {database.n_channels} channels over "
          f"{grid.rows}x{grid.cols} cells ({grid.extent_km[0]:.0f} km square)")

    # --- The bidders: 40 SUs at secret locations -------------------------------
    users = generate_users(database, 40, random.Random(7))
    sample = users[0]
    print(f"\nSU 0 (location secret: cell {sample.cell}) bids on "
          f"{len(sample.available_set())} available channels, "
          f"max bid {sample.max_bid()}")

    # --- The private auction ----------------------------------------------------
    result = run_lppa_auction(
        users,
        grid,
        two_lambda=6,          # interference square: 6 cells = 4.5 km
        bmax=127,              # public bid bound
        policy=UniformReplacePolicy(0.3),  # disguise 30 % of zero bids
        rng=random.Random(42),
    )
    outcome = result.outcome
    print(f"\nLPPA auction: {len(outcome.wins)} allocations, "
          f"{len(outcome.valid_wins)} valid")
    print(f"  revenue (sum of winning bids): {outcome.sum_of_winning_bids()}")
    print(f"  user satisfaction:             {outcome.user_satisfaction():.1%}")
    print(f"  spectrum reuse factor:         {outcome.reuse_factor():.2f} "
          f"winners/channel")
    print(f"  conflict graph:                {result.conflict_graph.n_edges} edges "
          f"(built from masked coordinates only)")
    print(f"  wire volume:                   {result.total_bytes / 1024:.1f} KiB "
          f"({result.location_bytes / 1024:.1f} location, "
          f"{result.bid_bytes / 1024:.1f} bids)")

    # --- The non-private baseline for comparison --------------------------------
    plain = run_plain_auction(users, random.Random(42), two_lambda=6)
    ratio = outcome.sum_of_winning_bids() / plain.sum_of_winning_bids()
    print(f"\nPlain (no privacy) auction revenue: {plain.sum_of_winning_bids()} "
          f"-> LPPA keeps {ratio:.1%} of it")


if __name__ == "__main__":
    main()
