#!/usr/bin/env python3
"""The attacks: geo-locating a bidder from its bid vector alone.

Reproduces section III on one user in the rural Area 4: the BCM attack
intersects the coverage complements of every channel the user bid on, the
BPM attack then matches the bid-price profile against the per-cell quality
database.  Prints a map of the shrinking candidate region.

Run:  python examples/attack_demo.py
"""

import random

from repro.attacks import bcm_attack, bpm_attack, score_attack
from repro.auction import generate_users
from repro.geo import make_database
from repro.viz import render_mask


def main() -> None:
    database = make_database(area=4, n_channels=129)
    grid = database.coverage.grid
    users = generate_users(database, 20, random.Random(3))
    # Pick the user the attack pins down the hardest (most bid channels).
    user = max(users, key=lambda u: len(u.available_set()))
    print(f"Victim: SU {user.user_id}, true cell {user.cell}, "
          f"{len(user.available_set())} channels bid (129-channel auction)")
    print(f"Prior: {grid.n_cells} possible cells\n")

    # --- BCM: Algorithm 1 -------------------------------------------------------
    possible = bcm_attack(database, user)
    bcm = score_attack(possible, user.cell, grid)
    print(f"BCM attack  -> {bcm.n_cells} cells "
          f"(uncertainty {bcm.uncertainty_bits:.1f} bits, "
          f"{'FAILED' if bcm.failed else 'true cell inside'})")

    # --- BPM: Algorithm 2 -------------------------------------------------------
    refined = bpm_attack(database, user, possible, keep_fraction=0.02,
                         max_cells=50)
    bpm = score_attack(refined, user.cell, grid)
    print(f"BPM attack  -> {bpm.n_cells} cells "
          f"(incorrectness {bpm.incorrectness_cells:.1f} cells, "
          f"{'FAILED' if bpm.failed else 'true cell inside'})\n")

    print("BCM candidate region ('X' = victim):")
    print(render_mask(possible, user.cell, step=2))
    print("\nBPM candidate region:")
    print(render_mask(refined, user.cell, step=2))


if __name__ == "__main__":
    main()
