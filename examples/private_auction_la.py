#!/usr/bin/env python3
"""A multi-round private auction campaign with pseudonym mixing.

Runs several consecutive LPPA rounds over the full 129-channel Area 3 map
(the paper's LPPA-evaluation area) with a fresh ID pool per round (section
V.C.3), reporting per-round performance, the TTP's batched charging
workload, and the cumulative communication volume — the operational view a
spectrum-license holder deploying LPPA would care about.

Uses the fast numeric simulator for the repeated rounds and one full
cryptographic round to report true wire sizes.

Run:  python examples/private_auction_la.py
"""

import random

from repro.auction import generate_users, run_plain_auction
from repro.geo import make_database
from repro.lppa import (
    IdPool,
    UniformReplacePolicy,
    run_fast_lppa,
    run_lppa_auction,
)

N_ROUNDS = 5
N_USERS = 120
REPLACE_PROB = 0.4


def main() -> None:
    database = make_database(area=3, n_channels=129)
    grid = database.coverage.grid
    users = generate_users(database, N_USERS, random.Random(11))
    policy = UniformReplacePolicy(REPLACE_PROB)

    print(f"Campaign: {N_ROUNDS} rounds, {N_USERS} SUs, 129 channels, "
          f"zero-replace probability {REPLACE_PROB}")
    print(f"{'round':>5}  {'pseudonym sample':>18}  {'revenue':>8}  "
          f"{'satisfaction':>12}  {'invalid wins':>12}")

    mix_rng = random.Random(99)
    for round_idx in range(N_ROUNDS):
        # Fresh pseudonyms every round: the auctioneer cannot link bidders
        # across rounds, so BCM constraints cannot accumulate.
        pool = IdPool.fresh(N_USERS, mix_rng)
        result = run_fast_lppa(
            users,
            two_lambda=6,
            bmax=127,
            policy=policy,
            rng=random.Random(1000 + round_idx),
        )
        outcome = result.outcome
        invalid = len(outcome.wins) - len(outcome.valid_wins)
        print(f"{round_idx:>5}  {str(pool.wire_id(0)):>18}  "
              f"{outcome.sum_of_winning_bids():>8}  "
              f"{outcome.user_satisfaction():>11.1%}  {invalid:>12}")

    # --- Baseline and true wire costs (one full-crypto round) --------------------
    plain = run_plain_auction(users, random.Random(0), two_lambda=6)
    print(f"\nPlain-auction baseline revenue: {plain.sum_of_winning_bids()}, "
          f"satisfaction {plain.user_satisfaction():.1%}")

    crypto_users = users[:30]  # full HMAC path on a population slice
    crypto = run_lppa_auction(
        crypto_users,
        grid,
        two_lambda=6,
        bmax=127,
        policy=policy,
        rng=random.Random(5),
    )
    per_user_kib = crypto.bid_bytes / len(crypto_users) / 1024
    print(f"\nFull-crypto round ({len(crypto_users)} SUs): "
          f"{crypto.total_bytes / 1024:.0f} KiB on the wire "
          f"({per_user_kib:.1f} KiB per bidder for the 129-channel bid vector)")
    print(f"TTP batch size: {len(crypto.outcome.wins)} charge requests "
          f"(one online period per round, section V.C.2)")


if __name__ == "__main__":
    main()
