#!/usr/bin/env python3
"""Choosing a defence: cloaking, OPE, Paillier, or LPPA?

Puts the repository's baselines side by side for a channel-scarce world:
the obvious location cloak (breaks interference guarantees, ignores the
bid channel), the one-ciphertext OPE (tiny but leaky), the Paillier route
of the paper's reference [7] (heavy and interactive), and LPPA.

Run:  python examples/defence_comparison.py
"""

from repro.experiments import (
    ablation_masking_backend,
    baseline_comparison_table,
    cloaking_comparison_table,
    format_table,
)


def main() -> None:
    print(format_table(
        cloaking_comparison_table(),
        title=(
            "Defence outcomes (150 users, 20 channels, 2λ=10; "
            "'violations' = real co-channel interference events)"
        ),
    ))
    print("\nReading: the cloak rows look great on revenue precisely because"
          "\ntheir broken conflict graphs allow illegal reuse — the violations"
          "\ncolumn is the bill.  LPPA pays with revenue instead, never physics.")

    print()
    print(format_table(
        baseline_comparison_table(),
        title="Communication: LPPA vs the Paillier design of ref [7]",
    ))

    print()
    print(format_table(
        ablation_masking_backend(),
        title="Per-entry masking trade-offs",
    ))
    print("\nThe prefix sets cost ~100x an OPE ciphertext; what they buy is"
          "\nthe hidden-range query the location protocol cannot live without.")


if __name__ == "__main__":
    main()
