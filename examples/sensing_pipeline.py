#!/usr/bin/env python3
"""Spectrum sensing vs database query: where the BPM attack's error comes from.

The paper's SUs learn channel conditions "through spectrum sensing or
database query" and its BPM attack tolerates a "measurement discrepancy
between the channel evaluation of secondary user and the real spectrum
quality".  This example makes that discrepancy physical: bids are generated
from an energy detector with configurable noise, and the BPM attack's
accuracy is compared against the database-driven (noise-free availability)
pipeline.

Run:  python examples/sensing_pipeline.py
"""

import random

from repro.attacks import bcm_attack, bpm_attack, score_attack, aggregate_scores
from repro.auction import generate_users, generate_users_from_sensing
from repro.geo import EnergyDetector, make_database

N_USERS = 40


def attack_accuracy(database, users):
    """Mean BPM candidate count and failure rate over a population."""
    grid = database.coverage.grid
    scores = []
    for user in users:
        if not user.available_set():
            continue
        possible = bcm_attack(database, user)
        refined = bpm_attack(
            database, user, possible, keep_fraction=0.05, max_cells=100
        )
        scores.append(score_attack(refined, user.cell, grid))
    return aggregate_scores(scores)


def main() -> None:
    database = make_database(area=4, n_channels=60)
    rng = random.Random(17)
    cells = database.coverage.grid.random_cells(rng, N_USERS)

    db_users = generate_users(
        database, N_USERS, random.Random(5), cells=cells
    )
    print(f"{'pipeline':>28}  {'BPM cells':>10}  {'failure':>8}")
    agg = attack_accuracy(database, db_users)
    print(f"{'database (paper eta noise)':>28}  {agg.mean_cells:>10.1f}  "
          f"{agg.failure_rate:>8.2f}")

    for sigma in (1.0, 3.0, 6.0):
        detector = EnergyDetector(noise_sigma_db=sigma, n_samples=4)
        users = generate_users_from_sensing(
            database, N_USERS, random.Random(5), detector, cells=cells
        )
        # How often does sensing mis-judge availability?
        flips = sum(
            len(user.available_set() ^ {
                ch for ch in database.available_channels(user.cell)
                if database.channel_quality(user.cell, ch) > 0
            })
            for user in users
        )
        agg = attack_accuracy(database, users)
        label = f"sensing sigma={sigma:.0f} dB"
        print(f"{label:>28}  {agg.mean_cells:>10.1f}  {agg.failure_rate:>8.2f}"
              f"   ({flips} availability flips)")

    print("\nReading: noisier sensing perturbs the bid profile BPM matches "
          "against, so the attack needs more candidate cells and fails more "
          "often — the paper's motivation for returning multi-cell outputs.")


if __name__ == "__main__":
    main()
